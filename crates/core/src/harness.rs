//! High-level entry point: synthesize a strategy for a test purpose and use
//! it as a test case.
//!
//! [`TestHarness`] bundles the whole pipeline of the paper's Fig. 4:
//! SPEC (TIOGA) + test purpose → UPPAAL-TIGA-style strategy synthesis →
//! strategy-driven test generation and execution → verdict.

use crate::exec::{TestConfig, TestExecutor, TestReport};
use crate::iut::Iut;
use crate::verdict::Verdict;
use std::fmt;
use tiga_model::{ModelError, System};
use tiga_solver::{
    solve, CompiledController, Controller, GameSolution, SolveOptions, SolverError, Strategy,
};
use tiga_tctl::{TctlError, TestPurpose};

/// Errors raised while assembling a test harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// The test purpose could not be parsed or resolved.
    Purpose(TctlError),
    /// The game could not be solved.
    Solver(SolverError),
    /// The models could not be evaluated.
    Model(ModelError),
    /// The purpose is not enforceable: no winning strategy exists, so it
    /// cannot be used as a test case.
    NotEnforceable {
        /// The offending purpose, for the error message.
        purpose: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Purpose(e) => write!(f, "test purpose error: {e}"),
            HarnessError::Solver(e) => write!(f, "solver error: {e}"),
            HarnessError::Model(e) => write!(f, "model error: {e}"),
            HarnessError::NotEnforceable { purpose } => {
                write!(f, "no winning strategy exists for `{purpose}`")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<TctlError> for HarnessError {
    fn from(e: TctlError) -> Self {
        HarnessError::Purpose(e)
    }
}

impl From<SolverError> for HarnessError {
    fn from(e: SolverError) -> Self {
        HarnessError::Solver(e)
    }
}

impl From<ModelError> for HarnessError {
    fn from(e: ModelError) -> Self {
        HarnessError::Model(e)
    }
}

/// A synthesized, executable test case: the winning strategy for one test
/// purpose, ready to be run against implementations.
pub struct TestHarness {
    product: System,
    spec: System,
    purpose: TestPurpose,
    solution: GameSolution,
    controller: CompiledController,
    config: TestConfig,
}

impl TestHarness {
    /// Synthesizes a test harness.
    ///
    /// * `product` — the closed network: plant TIOGA composed with its
    ///   environment model (the game is solved on this system);
    /// * `spec` — the plant-only specification used for conformance
    ///   monitoring (pass a clone of `product` to monitor against the whole
    ///   network instead);
    /// * `purpose` — a `control: A<> φ` (reachability) or `control: A[] φ`
    ///   (safety) test purpose over `product`; safety test cases drive a
    ///   safe, possibly non-terminating controller and pass when the
    ///   observation budget ends inside `φ`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::NotEnforceable`] if no winning strategy exists,
    /// or the underlying parsing/solving errors.
    ///
    /// The game is solved with [`SolveOptions::default`], i.e. the on-the-fly
    /// (OTFUR) engine: exploration stops as soon as the initial state is
    /// decided and the strategy is extracted during the search.  Use
    /// [`TestHarness::synthesize_with`] to select a different engine.
    pub fn synthesize(
        product: System,
        spec: System,
        purpose: &str,
        config: TestConfig,
    ) -> Result<Self, HarnessError> {
        Self::synthesize_with(product, spec, purpose, config, &SolveOptions::default())
    }

    /// Like [`TestHarness::synthesize`], with explicit solver options (engine
    /// selection, exploration limits, early-termination control).
    ///
    /// # Errors
    ///
    /// Same as [`TestHarness::synthesize`].
    pub fn synthesize_with(
        product: System,
        spec: System,
        purpose: &str,
        config: TestConfig,
        options: &SolveOptions,
    ) -> Result<Self, HarnessError> {
        let parsed = TestPurpose::parse(purpose, &product)?;
        let solution = solve(&product, &parsed, options)?;
        let Some(strategy) = solution.strategy.as_ref() else {
            return Err(HarnessError::NotEnforceable {
                purpose: purpose.to_string(),
            });
        };
        if !solution.winning_from_initial {
            return Err(HarnessError::NotEnforceable {
                purpose: purpose.to_string(),
            });
        }
        let controller = CompiledController::compile(strategy);
        Ok(TestHarness {
            product,
            spec,
            purpose: parsed,
            solution,
            controller,
            config,
        })
    }

    /// The synthesized winning strategy (the test case).
    ///
    /// # Panics
    ///
    /// Never panics: `synthesize` guarantees the strategy exists.
    #[must_use]
    pub fn strategy(&self) -> &Strategy {
        self.solution
            .strategy
            .as_ref()
            .expect("synthesize only succeeds with a strategy")
    }

    /// The minimized, compiled controller executions run on by default.
    #[must_use]
    pub fn controller(&self) -> &CompiledController {
        &self.controller
    }

    /// The solved game (winning sets, statistics, explored graph).
    #[must_use]
    pub fn solution(&self) -> &GameSolution {
        &self.solution
    }

    /// The parsed test purpose.
    #[must_use]
    pub fn purpose(&self) -> &TestPurpose {
        &self.purpose
    }

    /// The closed product model the strategy plays on.
    #[must_use]
    pub fn product(&self) -> &System {
        &self.product
    }

    /// The plant-only specification used for tioco monitoring.
    #[must_use]
    pub fn spec(&self) -> &System {
        &self.spec
    }

    /// The execution configuration.
    #[must_use]
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Executes the test case against an implementation.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] only for internal model-evaluation failures;
    /// conformance violations are reported through the verdict.
    /// Runs on the compiled controller; [`TestHarness::execute_controlled`]
    /// accepts an explicit controller (e.g. the interpreted strategy) for
    /// differential comparison.
    pub fn execute(&self, iut: &mut dyn Iut) -> Result<TestReport, ModelError> {
        self.execute_controlled(iut, &self.controller)
    }

    /// Executes the test case with an explicit controller.
    ///
    /// The differential suites run the same IUT under the compiled
    /// controller and the interpreted [`TestHarness::strategy`] and pin
    /// verdicts and traces identical.
    ///
    /// # Errors
    ///
    /// Same as [`TestHarness::execute`].
    pub fn execute_controlled(
        &self,
        iut: &mut dyn Iut,
        controller: &dyn Controller,
    ) -> Result<TestReport, ModelError> {
        let executor = TestExecutor::new(
            &self.product,
            &self.spec,
            controller,
            &self.purpose,
            self.config.clone(),
        )?;
        executor.run(iut)
    }

    /// Executes the test case repeatedly (fresh reset every time) and returns
    /// the first non-`Pass` verdict, or `Pass` if all repetitions pass.
    ///
    /// Useful against implementations with jittery output policies, where
    /// different runs may exercise different output timings.
    ///
    /// # Errors
    ///
    /// Same as [`TestHarness::execute`].
    pub fn execute_repeated(
        &self,
        iut: &mut dyn Iut,
        repetitions: usize,
    ) -> Result<TestReport, ModelError> {
        let mut last = None;
        for _ in 0..repetitions.max(1) {
            let report = self.execute(iut)?;
            if !matches!(report.verdict, Verdict::Pass) {
                return Ok(report);
            }
            last = Some(report);
        }
        Ok(last.expect("at least one repetition"))
    }
}

impl fmt::Debug for TestHarness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestHarness")
            .field("product", &self.product.name())
            .field("purpose", &self.purpose.source)
            .field("strategy_rules", &self.strategy().rule_count())
            .field("controller_rules", &self.controller.rule_count())
            .finish()
    }
}
