//! Strategy-driven test execution (Algorithm 3.1 of the paper).
//!
//! The executor incrementally builds a test run by consulting the winning
//! strategy: either it sends the prescribed input to the implementation, or
//! it waits — for a bounded amount of time derived from the strategy's next
//! action region and the product invariant — observing outputs.  Every
//! observation is checked against the specification through the
//! [`SpecMonitor`] (tioco), producing `fail` on a violation and `pass` once
//! the test purpose is reached.  Safety purposes (`control: A[] φ`) invert
//! the goal check: entering a `¬φ` state is a failure, and a run that
//! exhausts its step or time budget while maintaining `φ` passes — the safe
//! controller is allowed to be non-terminating.
//!
//! Time-bounded purposes (`control: A<><=T φ` / `control: A[]<=T φ`) tighten
//! the run's time budget to `T` model time units: a bounded reachability run
//! that has not reached `φ` by the deadline ends
//! `Inconclusive(BoundExceeded)` (attributed to the purpose, not the
//! executor's own budget), and a bounded safety run passes as soon as the
//! deadline is reached with `φ` still holding — the bound is weak, so a
//! violation at exactly `T` still fails.  The controller of a bounded
//! purpose was synthesized on the `#t`-augmented product (see
//! [`tiga_solver::bounded_system`]); the executor transparently appends the
//! elapsed time to the clock valuation when consulting it.

use crate::iut::{DelayOutcome, Iut};
use crate::monitor::{MonitorOutcome, SpecMonitor};
use crate::trace::TimedTrace;
use crate::verdict::{FailReason, InconclusiveReason, Verdict};
use tiga_model::{ConcreteState, DiscreteState, Interpreter, JointEdge, ModelError, System};
use tiga_solver::{Controller, StrategyDecision};
use tiga_tctl::{PathQuantifier, TestPurpose};

/// Configuration of a test execution.
#[derive(Clone, Debug)]
pub struct TestConfig {
    /// Ticks per model time unit (must match the implementation under test).
    pub scale: i64,
    /// Maximum number of executor steps before giving up.
    pub max_steps: usize,
    /// Maximum total virtual time, in ticks.
    pub max_ticks: i64,
    /// Wait chunk (in ticks) used when neither the strategy nor an invariant
    /// bounds the wait.
    pub default_wait: i64,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            scale: 4,
            max_steps: 10_000,
            max_ticks: 100_000,
            default_wait: 32,
        }
    }
}

/// The outcome of one test execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestReport {
    /// Final verdict.
    pub verdict: Verdict,
    /// The observable timed trace of the run.
    pub trace: TimedTrace,
    /// Ticks per time unit used during the run.
    pub scale: i64,
    /// Number of executor steps taken.
    pub steps: usize,
    /// Name of the implementation under test.
    pub iut_name: String,
}

impl TestReport {
    /// Total virtual duration of the run in time units.
    #[must_use]
    pub fn duration_units(&self) -> f64 {
        self.trace.total_ticks() as f64 / self.scale as f64
    }
}

/// Strategy-driven test executor (the paper's `TestExec`).
///
/// Generic over the controller representation: any [`Controller`] — the
/// interpreted [`tiga_solver::Strategy`] or a compiled
/// [`tiga_solver::CompiledController`] — drives the run; both are pinned to
/// produce identical verdicts and traces by the differential suites.
#[derive(Clone)]
pub struct TestExecutor<'a> {
    product: &'a System,
    spec: &'a System,
    controller: &'a dyn Controller,
    purpose: &'a TestPurpose,
    config: TestConfig,
}

impl std::fmt::Debug for TestExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestExecutor")
            .field("product", &self.product.name())
            .field("purpose", &self.purpose.source)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> TestExecutor<'a> {
    /// Creates an executor.
    ///
    /// * `product` — the closed plant∥environment network the strategy was
    ///   synthesized on; the executor tracks its state to consult the
    ///   strategy.
    /// * `spec` — the plant-only specification used for tioco monitoring.
    /// * `controller` — a winning controller for `purpose` on `product`
    ///   (an interpreted strategy or a compiled controller).  For a
    ///   time-bounded purpose the controller must have been synthesized on
    ///   the `#t`-augmented product (one extra trailing clock dimension);
    ///   the executor appends the elapsed time to every query.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the configuration is invalid (non-positive
    /// scale).
    pub fn new(
        product: &'a System,
        spec: &'a System,
        controller: &'a dyn Controller,
        purpose: &'a TestPurpose,
        config: TestConfig,
    ) -> Result<Self, ModelError> {
        if config.scale <= 0 {
            return Err(ModelError::Invalid(
                "tick scale must be positive".to_string(),
            ));
        }
        Ok(TestExecutor {
            product,
            spec,
            controller,
            purpose,
            config,
        })
    }

    fn discrete_of(state: &ConcreteState) -> DiscreteState {
        DiscreteState {
            locations: state.locations.clone(),
            vars: state.vars.clone(),
        }
    }

    /// Runs the test against an implementation and produces a report.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] only for internal evaluation failures of the
    /// models (not for conformance violations, which yield a
    /// [`Verdict::Fail`]).
    pub fn run(&self, iut: &mut dyn Iut) -> Result<TestReport, ModelError> {
        iut.reset();
        let scale = self.config.scale;
        let iut_name = iut.name().to_string();
        let interp = Interpreter::new(self.product, scale)?;
        let mut product_state = interp.initial_state()?;
        let mut monitor = SpecMonitor::new(self.spec, scale)?;
        let mut trace = TimedTrace::new();
        let mut now: i64 = 0;
        let mut steps = 0usize;

        let finish = move |verdict: Verdict, trace: TimedTrace, steps: usize| TestReport {
            verdict,
            trace,
            scale,
            steps,
            iut_name: iut_name.clone(),
        };

        let safety = self.purpose.quantifier == PathQuantifier::Safety;
        // A time-bounded purpose caps the run at `T` model time units; the
        // effective time budget is the tighter of the bound and the
        // executor's own `max_ticks`, and exhaustion is attributed to
        // whichever was hit.
        let bound_ticks = self.purpose.bound.map(|t| t.saturating_mul(scale));
        let budget_ticks = match bound_ticks {
            Some(b) => b.min(self.config.max_ticks),
            None => self.config.max_ticks,
        };
        loop {
            steps += 1;
            if safety {
                // Safety purpose `A[] φ`: entering `¬φ` is the failure —
                // checked before the budgets, so a violation in the final
                // state is never masked as a pass — and a run that exhausts
                // its budget without ever leaving `φ` passes (the
                // controller is allowed to be non-terminating).
                let predicate_holds = self
                    .purpose
                    .predicate
                    .holds_concrete(self.product, &product_state)
                    .map_err(|e| ModelError::Invalid(e.to_string()))?;
                if !predicate_holds {
                    return Ok(finish(
                        Verdict::Fail(FailReason::SafetyViolation {
                            state: format!(
                                "{}",
                                Self::discrete_of(&product_state).display(self.product)
                            ),
                            at_ticks: now,
                        }),
                        trace,
                        steps,
                    ));
                }
                if steps > self.config.max_steps || now >= budget_ticks {
                    // For a bounded purpose this fires at the deadline `T`
                    // itself: the `¬φ` check above ran first, so a violation
                    // at exactly `T` fails (weak bound), while `φ` holding
                    // through the deadline passes.
                    return Ok(finish(Verdict::Pass, trace, steps));
                }
            } else {
                if steps > self.config.max_steps {
                    return Ok(finish(
                        Verdict::Inconclusive(InconclusiveReason::StepBudgetExhausted),
                        trace,
                        steps,
                    ));
                }
                // Goal check (pass as soon as the purpose holds).
                if self
                    .purpose
                    .predicate
                    .holds_concrete(self.product, &product_state)
                    .map_err(|e| ModelError::Invalid(e.to_string()))?
                {
                    return Ok(finish(Verdict::Pass, trace, steps));
                }
                if now >= budget_ticks {
                    // The goal check above ran first, so reaching `φ` at
                    // exactly the deadline still passes (weak bound).
                    let reason = match bound_ticks {
                        Some(b) if now >= b => InconclusiveReason::BoundExceeded {
                            bound: self.purpose.bound.unwrap_or(0),
                        },
                        _ => InconclusiveReason::TimeBudgetExhausted,
                    };
                    return Ok(finish(Verdict::Inconclusive(reason), trace, steps));
                }
            }

            let discrete = Self::discrete_of(&product_state);
            // One fused query answers both the decision and — on a wait —
            // the wake-up hint; the compiled controller serves both from a
            // single state lookup.  Bounded controllers play on the
            // `#t`-augmented product, whose extra trailing clock is the
            // never-reset elapsed time — exactly `now`.
            let decision = if self.purpose.bound.is_some() {
                let mut clocks = product_state.clocks.clone();
                clocks.push(now);
                self.controller
                    .decide_with_wakeup(&discrete, &clocks, scale)
            } else {
                self.controller
                    .decide_with_wakeup(&discrete, &product_state.clocks, scale)
            };
            match decision {
                None => {
                    return Ok(finish(
                        Verdict::Inconclusive(InconclusiveReason::OffStrategy {
                            state: format!("{}", discrete.display(self.product)),
                        }),
                        trace,
                        steps,
                    ));
                }
                Some((StrategyDecision::Take(joint), _)) => {
                    match joint {
                        JointEdge::Sync { channel, .. } => {
                            let name = self.product.channel(*channel).name().to_string();
                            iut.offer_input(&name);
                            monitor.observe_input(&name)?;
                            match interp.fire_sync(&product_state, *channel)? {
                                Some(next) => product_state = next,
                                None => {
                                    return Ok(finish(
                                        Verdict::Inconclusive(InconclusiveReason::OffStrategy {
                                            state: format!(
                                                "strategy prescribed {name}? but the product cannot fire it"
                                            ),
                                        }),
                                        trace,
                                        steps,
                                    ));
                                }
                            }
                            trace.push_input(&name);
                        }
                        JointEdge::Internal { automaton, edge } => {
                            // A controllable internal move of the environment
                            // model: only the product state changes.
                            let edge_ref = tiga_model::EdgeRef {
                                automaton: *automaton,
                                edge: *edge,
                            };
                            match interp.fire_edge(&product_state, edge_ref)? {
                                Some(next) => product_state = next,
                                None => {
                                    return Ok(finish(
                                        Verdict::Inconclusive(InconclusiveReason::OffStrategy {
                                            state: "strategy prescribed a disabled internal move"
                                                .to_string(),
                                        }),
                                        trace,
                                        steps,
                                    ));
                                }
                            }
                        }
                    }
                }
                Some((StrategyDecision::Wait { .. }, take_hint)) => {
                    let inv_bound = interp.max_delay(&product_state)?;
                    let remaining = budget_ticks - now;
                    let mut wait = self.config.default_wait.max(1);
                    // A zero hint would mean an immediately applicable action,
                    // which `decide` already ruled out (it can only come from
                    // a higher-rank rule); ignore it as a wake-up hint.
                    if let Some(h) = take_hint {
                        if h > 0 {
                            wait = wait.min(h);
                        }
                    }
                    if let Some(b) = inv_bound {
                        wait = wait.min(b);
                    }
                    wait = wait.min(remaining).max(0);

                    if wait == 0 {
                        // The product invariant forbids further delay: an
                        // uncontrollable output is due *now*.
                        match iut.delay(0) {
                            DelayOutcome::Output { channel, .. } => {
                                match self.handle_output(
                                    &interp,
                                    &mut monitor,
                                    &mut product_state,
                                    &mut trace,
                                    &channel,
                                    now,
                                )? {
                                    Some(fail) => {
                                        return Ok(finish(Verdict::Fail(fail), trace, steps))
                                    }
                                    None => continue,
                                }
                            }
                            DelayOutcome::Quiet => {
                                // Nothing happened although the invariant
                                // requires progress: check whose deadline it
                                // is.  It is the implementation's fault only
                                // if the closed product — the world the
                                // implementation lives in — actually offers
                                // an output synchronization to discharge it.
                                // A lone half-edge with no receiver is not an
                                // output the implementation could have
                                // produced.
                                let output_due =
                                    interp.enabled_syncs(&product_state)?.into_iter().any(|ch| {
                                        self.product.channel(ch).kind()
                                            == tiga_model::ChannelKind::Output
                                    });
                                if output_due {
                                    return Ok(finish(
                                        Verdict::Fail(FailReason::MissedDeadline { at_ticks: now }),
                                        trace,
                                        steps,
                                    ));
                                }
                                // No output is due: the blocked product may
                                // still progress through a forced internal
                                // move (the plant changes state silently).
                                // Advance product and specification through
                                // the same deterministic hop — a quiet
                                // simulated implementation made it too.
                                if let Some(next) = interp.fire_first_internal(&product_state)? {
                                    product_state = next;
                                    monitor.progress_internal()?;
                                    continue;
                                }
                                let spec_bound = monitor.max_allowed_delay()?;
                                if spec_bound == Some(0) {
                                    // Nothing can discharge the deadline and
                                    // the strategy prescribed waiting, so the
                                    // run is stuck for good.  A blocked safety
                                    // run maintains its predicate forever, so
                                    // it passes; a reachability purpose is out
                                    // of reach.
                                    if safety {
                                        return Ok(finish(Verdict::Pass, trace, steps));
                                    }
                                    return Ok(finish(
                                        Verdict::Inconclusive(InconclusiveReason::SpecTimelock {
                                            at_ticks: now,
                                        }),
                                        trace,
                                        steps,
                                    ));
                                }
                                return Ok(finish(
                                    Verdict::Inconclusive(InconclusiveReason::UnboundedWait),
                                    trace,
                                    steps,
                                ));
                            }
                        }
                    }

                    match iut.delay(wait) {
                        DelayOutcome::Quiet => {
                            if let MonitorOutcome::Violation(fail) = monitor.observe_delay(wait)? {
                                trace.push_delay(wait);
                                return Ok(finish(Verdict::Fail(fail), trace, steps));
                            }
                            match interp.delayed(&product_state, wait)? {
                                Some(next) => product_state = next,
                                None => {
                                    return Ok(finish(
                                        Verdict::Inconclusive(InconclusiveReason::OffStrategy {
                                            state: "product invariant violated while waiting"
                                                .to_string(),
                                        }),
                                        trace,
                                        steps,
                                    ));
                                }
                            }
                            trace.push_delay(wait);
                            now += wait;
                        }
                        DelayOutcome::Output { after, channel } => {
                            if after > 0 {
                                if let MonitorOutcome::Violation(fail) =
                                    monitor.observe_delay(after)?
                                {
                                    trace.push_delay(after);
                                    return Ok(finish(Verdict::Fail(fail), trace, steps));
                                }
                                match interp.delayed(&product_state, after)? {
                                    Some(next) => product_state = next,
                                    None => {
                                        return Ok(finish(
                                            Verdict::Inconclusive(
                                                InconclusiveReason::OffStrategy {
                                                    state:
                                                        "product invariant violated before output"
                                                            .to_string(),
                                                },
                                            ),
                                            trace,
                                            steps,
                                        ));
                                    }
                                }
                                trace.push_delay(after);
                                now += after;
                            }
                            match self.handle_output(
                                &interp,
                                &mut monitor,
                                &mut product_state,
                                &mut trace,
                                &channel,
                                now,
                            )? {
                                Some(fail) => return Ok(finish(Verdict::Fail(fail), trace, steps)),
                                None => continue,
                            }
                        }
                    }
                }
            }
        }
    }

    /// Processes an observed output: tioco check, product update, trace.
    /// Returns `Some(reason)` if the output is a conformance violation.
    fn handle_output(
        &self,
        interp: &Interpreter<'_>,
        monitor: &mut SpecMonitor<'_>,
        product_state: &mut ConcreteState,
        trace: &mut TimedTrace,
        channel: &str,
        now: i64,
    ) -> Result<Option<FailReason>, ModelError> {
        trace.push_output(channel);
        if let MonitorOutcome::Violation(fail) = monitor.observe_output(channel)? {
            return Ok(Some(fail));
        }
        let Some(ch) = self.product.channel_by_name(channel) else {
            return Ok(Some(FailReason::UnexpectedOutput {
                channel: channel.to_string(),
                at_ticks: now,
            }));
        };
        match interp.fire_sync(product_state, ch)? {
            Some(next) => {
                *product_state = next;
                Ok(None)
            }
            None => Ok(Some(FailReason::EnvironmentRefusedOutput {
                channel: channel.to_string(),
                at_ticks: now,
            })),
        }
    }
}
