//! Black-box implementations under test (IUTs).
//!
//! The test-execution engine only sees the [`Iut`] trait: it can offer inputs
//! and let (virtual) time pass, observing outputs.  Two implementations are
//! provided:
//!
//! * [`SimulatedIut`] interprets a (possibly mutated) plant model with a
//!   deterministic output-scheduling policy — this realizes the paper's test
//!   hypothesis (the implementation is a deterministic, input-enabled,
//!   output-urgent TIOTS) while letting benchmarks inject faults;
//! * [`ScriptedIut`] replays a fixed timetable of outputs, used by unit tests
//!   of the executor.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tiga_model::{ChannelId, ChannelKind, CmpOp, ConcreteState, EdgeRef, Interpreter, System};

/// Result of letting time pass on an implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayOutcome {
    /// No output occurred within the granted delay.
    Quiet,
    /// The implementation produced `channel!` after `after` ticks
    /// (`0 <= after <= granted delay`).
    Output {
        /// Ticks elapsed before the output.
        after: i64,
        /// Output channel name.
        channel: String,
    },
}

/// A black-box implementation under test.
///
/// All times are in ticks; the tester and the implementation must agree on
/// the tick scale (ticks per model time unit).
pub trait Iut {
    /// Resets the implementation to its initial state.
    fn reset(&mut self);

    /// Offers an input to the implementation (identified by channel name).
    ///
    /// Implementations are assumed input-enabled; inputs that a faulty
    /// implementation cannot process are silently ignored.
    fn offer_input(&mut self, channel: &str);

    /// Lets up to `max_ticks` of time pass and reports the first output
    /// produced in that window, if any.
    fn delay(&mut self, max_ticks: i64) -> DelayOutcome;

    /// A short name used in reports.
    fn name(&self) -> &str {
        "iut"
    }
}

/// When, inside its allowed window, a simulated implementation produces its
/// outputs.
///
/// The specification leaves the output time uncertain (that is the point of
/// the paper); a concrete deterministic implementation picks one behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputPolicy {
    /// Produce outputs as early as the guard allows.
    Eager,
    /// Produce outputs as late as the invariant allows (never spontaneously
    /// if no deadline forces them).
    Lazy,
    /// Produce outputs a fixed number of ticks after they become enabled
    /// (clamped to the deadline).
    Offset(i64),
    /// Pick a reproducible pseudo-random instant inside the allowed window,
    /// derived from the seed and the current state.
    Jittery {
        /// Seed making the behaviour deterministic.
        seed: u64,
    },
}

/// A simulated implementation: a plant model interpreted at tick granularity
/// with a deterministic output-scheduling policy.
#[derive(Clone, Debug)]
pub struct SimulatedIut {
    name: String,
    system: System,
    scale: i64,
    policy: OutputPolicy,
    state: ConcreteState,
    ignored_inputs: usize,
    /// Closed-network semantics: actions are binary syncs between distinct
    /// automata (the view the game solver explores), not lone half-edges.
    closed: bool,
}

impl SimulatedIut {
    /// Creates a simulated implementation from a plant model.
    ///
    /// The model is interpreted in the *open* view: a lone `ch!` edge emits
    /// `ch` to the environment and a lone `ch?` edge receives it, matching a
    /// plant whose counterpart (the tester) lives outside the model.
    ///
    /// # Panics
    ///
    /// Panics if the model's initial state violates an invariant or `scale`
    /// is not positive (both indicate construction bugs, not runtime
    /// conditions).
    #[must_use]
    pub fn new(name: &str, system: System, scale: i64, policy: OutputPolicy) -> Self {
        Self::with_view(name, system, scale, policy, false)
    }

    /// Creates a simulated implementation of a *closed network*.
    ///
    /// Actions follow the same semantics the game solver explores: a
    /// channel fires only as a binary synchronization between an enabled
    /// `ch!` edge and an enabled `ch?` edge of two distinct automata.  A
    /// lone half-edge never fires.  Use this when the simulated model is an
    /// entire closed product (as in the fuzzing campaign, where generated
    /// games double as their own conformant implementation).
    ///
    /// # Panics
    ///
    /// Panics if the model's initial state violates an invariant or `scale`
    /// is not positive.
    #[must_use]
    pub fn closed(name: &str, system: System, scale: i64, policy: OutputPolicy) -> Self {
        Self::with_view(name, system, scale, policy, true)
    }

    fn with_view(
        name: &str,
        system: System,
        scale: i64,
        policy: OutputPolicy,
        closed: bool,
    ) -> Self {
        let state = Interpreter::new(&system, scale)
            .expect("positive tick scale")
            .initial_state()
            .expect("valid initial state");
        SimulatedIut {
            name: name.to_string(),
            system,
            scale,
            policy,
            state,
            ignored_inputs: 0,
            closed,
        }
    }

    /// The underlying model.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Number of inputs that were offered but ignored (useful to detect
    /// non-input-enabled mutants).
    #[must_use]
    pub fn ignored_inputs(&self) -> usize {
        self.ignored_inputs
    }

    /// The current internal state (visible for white-box assertions in
    /// tests; the executor never looks at it).
    #[must_use]
    pub fn state(&self) -> &ConcreteState {
        &self.state
    }

    fn interpreter(&self) -> Interpreter<'_> {
        Interpreter::new(&self.system, self.scale).expect("scale validated at construction")
    }

    /// Narrows a `(lo, hi)` firing window by one edge's guard (data guard
    /// plus clock constraints, scaled to ticks).  Returns `None` when the
    /// guard can never hold along a pure delay from the current state.
    fn narrow_window(
        &self,
        automaton: usize,
        edge: tiga_model::EdgeId,
        mut lo: i64,
        mut hi: Option<i64>,
    ) -> Option<(i64, Option<i64>)> {
        let guard = &self.system.automata()[automaton].edge(edge).guard;
        if !guard
            .data_holds(self.system.vars(), &self.state.vars)
            .unwrap_or(false)
        {
            return None;
        }
        for c in &guard.clocks {
            let m = c.bound.eval(self.system.vars(), &self.state.vars).ok()?;
            let m = m * self.scale;
            let left = self.state.clocks[c.left.index()];
            if let Some(right_clock) = c.minus {
                // Diagonal constraints are delay-invariant.
                let diff = left - self.state.clocks[right_clock.index()];
                if !c.op.apply(diff, m) {
                    return None;
                }
                continue;
            }
            match c.op {
                CmpOp::Ge => lo = lo.max(m - left),
                CmpOp::Gt => lo = lo.max(m - left + 1),
                CmpOp::Le => hi = Some(hi.map_or(m - left, |h| h.min(m - left))),
                CmpOp::Lt => hi = Some(hi.map_or(m - left - 1, |h| h.min(m - left - 1))),
                CmpOp::Eq => {
                    lo = lo.max(m - left);
                    hi = Some(hi.map_or(m - left, |h| h.min(m - left)));
                }
                CmpOp::Ne => return None,
            }
        }
        if let Some(h) = hi {
            if h < lo {
                return None;
            }
        }
        Some((lo, hi))
    }

    /// For every output *action* enabled (now or later, by pure delay) in
    /// the current state: its earliest and latest firing time in ticks.
    ///
    /// Open view: one entry per enabled `ch!` edge.  Closed view: one entry
    /// per enabled (`ch!`, `ch?`) pair of distinct automata, with the window
    /// narrowed by both guards.
    fn output_windows(&self) -> Vec<(EdgeRef, ChannelId, i64, Option<i64>)> {
        let interp = self.interpreter();
        let deadline = interp.max_delay(&self.state).unwrap_or(None);
        let mut windows = Vec::new();
        for (ai, aut) in self.system.automata().iter().enumerate() {
            for ei in aut.edges_from(self.state.locations[ai]) {
                let tiga_model::Sync::Output(ch) = aut.edge(ei).sync else {
                    continue;
                };
                if self.system.channel(ch).kind() != ChannelKind::Output {
                    continue;
                }
                let Some((lo, hi)) = self.narrow_window(ai, ei, 0, deadline) else {
                    continue;
                };
                let sender = EdgeRef {
                    automaton: tiga_model::AutomatonId::from_index(ai),
                    edge: ei,
                };
                if !self.closed {
                    windows.push((sender, ch, lo, hi));
                    continue;
                }
                // Closed network: the output only happens as a binary sync,
                // so some distinct automaton must take a `ch?` edge whose
                // guard holds over a (sub)window.
                for (bi, receiver) in self.system.automata().iter().enumerate() {
                    if bi == ai {
                        continue;
                    }
                    for ri in receiver.edges_from(self.state.locations[bi]) {
                        if receiver.edge(ri).sync != tiga_model::Sync::Input(ch) {
                            continue;
                        }
                        if let Some((lo, hi)) = self.narrow_window(bi, ri, lo, hi) {
                            windows.push((sender, ch, lo, hi));
                        }
                    }
                }
            }
        }
        windows
    }

    /// Decides, per the policy, when (if ever) the next output would occur and
    /// through which edge.
    fn next_output_plan(&self) -> Option<(i64, EdgeRef, ChannelId)> {
        let windows = self.output_windows();
        if windows.is_empty() {
            return None;
        }
        let deadline = self.interpreter().max_delay(&self.state).unwrap_or(None);
        match self.policy {
            OutputPolicy::Eager => windows
                .iter()
                .min_by_key(|(_, _, lo, _)| *lo)
                .map(|(e, ch, lo, _)| (*lo, *e, *ch)),
            OutputPolicy::Lazy => {
                let Some(deadline) = deadline else {
                    // No invariant forces an output: a lazy implementation
                    // stays quiescent.
                    return None;
                };
                // Prefer an edge enabled exactly at the deadline.
                windows
                    .iter()
                    .filter(|(_, _, lo, hi)| *lo <= deadline && hi.is_none_or(|h| h >= deadline))
                    .map(|(e, ch, _, _)| (deadline, *e, *ch))
                    .next()
                    .or_else(|| {
                        // Otherwise the latest possible firing time.
                        windows
                            .iter()
                            .filter_map(|(e, ch, lo, hi)| hi.map(|h| (h.max(*lo), *e, *ch)))
                            .max_by_key(|(t, _, _)| *t)
                    })
            }
            OutputPolicy::Offset(k) => windows
                .iter()
                .map(|(e, ch, lo, hi)| {
                    let mut t = lo + k.max(0);
                    if let Some(h) = hi {
                        t = t.min(*h);
                    }
                    (t, *e, *ch)
                })
                .min_by_key(|(t, _, _)| *t),
            OutputPolicy::Jittery { seed } => {
                let mut hasher = DefaultHasher::new();
                seed.hash(&mut hasher);
                self.state.locations.hash(&mut hasher);
                self.state.vars.hash(&mut hasher);
                self.state.clocks.hash(&mut hasher);
                let h = hasher.finish();
                windows
                    .iter()
                    .map(|(e, ch, lo, hi)| {
                        let span = match hi {
                            Some(hi) => (hi - lo).max(0),
                            None => 4 * self.scale,
                        };
                        let offset = if span == 0 {
                            0
                        } else {
                            (h % (span as u64 + 1)) as i64
                        };
                        (lo + offset, *e, *ch)
                    })
                    .min_by_key(|(t, _, _)| *t)
            }
        }
    }

    /// Advances the internal clocks without checking invariants (a silent
    /// faulty implementation simply lets time pass).
    fn force_advance(&mut self, ticks: i64) {
        for c in &mut self.state.clocks {
            *c += ticks;
        }
    }
}

impl Iut for SimulatedIut {
    fn reset(&mut self) {
        self.state = self
            .interpreter()
            .initial_state()
            .expect("valid initial state");
        self.ignored_inputs = 0;
    }

    fn offer_input(&mut self, channel: &str) {
        let Some(ch) = self.system.channel_by_name(channel) else {
            self.ignored_inputs += 1;
            return;
        };
        let interp = self.interpreter();
        let next = if self.closed {
            interp.fire_sync(&self.state, ch)
        } else {
            interp.after_input(&self.state, ch)
        };
        match next {
            Ok(Some(next)) => self.state = next,
            _ => self.ignored_inputs += 1,
        }
    }

    fn delay(&mut self, max_ticks: i64) -> DelayOutcome {
        let plan = self.next_output_plan();
        match plan {
            Some((after, edge, ch)) if after <= max_ticks => {
                self.force_advance(after);
                let interp = self.interpreter();
                let next = if self.closed {
                    // The planned window already accounts for a matching
                    // `ch?` edge; fire the whole synchronization.
                    interp.fire_sync(&self.state, ch)
                } else {
                    interp.fire_edge(&self.state, edge)
                };
                match next {
                    Ok(Some(next)) => {
                        self.state = next;
                        DelayOutcome::Output {
                            after,
                            channel: self.system.channel(ch).name().to_string(),
                        }
                    }
                    _ => {
                        // The planned edge turned out to be blocked (e.g. a
                        // mutant with an inconsistent update): stay silent.
                        self.force_advance(max_ticks - after);
                        DelayOutcome::Quiet
                    }
                }
            }
            _ => {
                // At a blocked instant with no output scheduled, the model
                // may still progress through a forced internal move: one
                // silent, deterministic hop per zero-length grant (the same
                // first-in-declaration-order rule the executor applies to
                // the product, keeping conformant runs in lockstep).
                if max_ticks == 0 {
                    let interp = self.interpreter();
                    if interp.max_delay(&self.state).unwrap_or(None) == Some(0) {
                        if let Ok(Some(next)) = interp.fire_first_internal(&self.state) {
                            self.state = next;
                        }
                    }
                    return DelayOutcome::Quiet;
                }
                self.force_advance(max_ticks);
                DelayOutcome::Quiet
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An implementation that replays a fixed timetable of outputs, ignoring
/// inputs.  Only useful for unit-testing the executor and the conformance
/// monitor.
#[derive(Clone, Debug)]
pub struct ScriptedIut {
    name: String,
    /// Remaining outputs as (absolute tick, channel) pairs, sorted by time.
    schedule: Vec<(i64, String)>,
    now: i64,
    inputs_seen: Vec<(i64, String)>,
}

impl ScriptedIut {
    /// Creates a scripted implementation from `(absolute tick, channel)`
    /// output events.
    #[must_use]
    pub fn new(name: &str, mut schedule: Vec<(i64, String)>) -> Self {
        schedule.sort_by_key(|(t, _)| *t);
        ScriptedIut {
            name: name.to_string(),
            schedule,
            now: 0,
            inputs_seen: Vec::new(),
        }
    }

    /// The inputs received so far, with their reception times.
    #[must_use]
    pub fn inputs_seen(&self) -> &[(i64, String)] {
        &self.inputs_seen
    }
}

impl Iut for ScriptedIut {
    fn reset(&mut self) {
        self.now = 0;
        self.inputs_seen.clear();
    }

    fn offer_input(&mut self, channel: &str) {
        self.inputs_seen.push((self.now, channel.to_string()));
    }

    fn delay(&mut self, max_ticks: i64) -> DelayOutcome {
        let horizon = self.now + max_ticks;
        if let Some(pos) = self
            .schedule
            .iter()
            .position(|(t, _)| *t >= self.now && *t <= horizon)
        {
            let (t, ch) = self.schedule.remove(pos);
            let after = t - self.now;
            self.now = t;
            DelayOutcome::Output { after, channel: ch }
        } else {
            self.now = horizon;
            DelayOutcome::Quiet
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, ClockConstraint, EdgeBuilder, SystemBuilder};

    /// Plant: after `req?`, replies `resp!` within [1, 3] (invariant x <= 3).
    fn responder() -> System {
        let mut b = SystemBuilder::new("responder");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let mut a = AutomatonBuilder::new("Plant");
        let idle = a.location("Idle").unwrap();
        let busy = a.location("Busy").unwrap();
        a.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        a.add_edge(
            EdgeBuilder::new(busy, idle)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn eager_iut_replies_at_earliest_time() {
        let mut iut = SimulatedIut::new("eager", responder(), 4, OutputPolicy::Eager);
        iut.offer_input("req");
        match iut.delay(100) {
            DelayOutcome::Output { after, channel } => {
                assert_eq!(after, 4); // 1 time unit at scale 4
                assert_eq!(channel, "resp");
            }
            DelayOutcome::Quiet => panic!("expected an output"),
        }
        // Nothing further until a new request.
        assert_eq!(iut.delay(100), DelayOutcome::Quiet);
    }

    #[test]
    fn lazy_iut_replies_at_deadline() {
        let mut iut = SimulatedIut::new("lazy", responder(), 4, OutputPolicy::Lazy);
        iut.offer_input("req");
        match iut.delay(100) {
            DelayOutcome::Output { after, channel } => {
                assert_eq!(after, 12); // 3 time units at scale 4
                assert_eq!(channel, "resp");
            }
            DelayOutcome::Quiet => panic!("expected an output"),
        }
    }

    #[test]
    fn offset_and_jittery_policies_stay_in_window() {
        for policy in [
            OutputPolicy::Offset(3),
            OutputPolicy::Jittery { seed: 7 },
            OutputPolicy::Jittery { seed: 12345 },
        ] {
            let mut iut = SimulatedIut::new("p", responder(), 4, policy);
            iut.offer_input("req");
            match iut.delay(100) {
                DelayOutcome::Output { after, channel } => {
                    assert_eq!(channel, "resp");
                    assert!((4..=12).contains(&after), "after = {after} for {policy:?}");
                }
                DelayOutcome::Quiet => panic!("expected an output for {policy:?}"),
            }
        }
    }

    #[test]
    fn jittery_policy_is_deterministic() {
        let run = |seed: u64| {
            let mut iut = SimulatedIut::new("p", responder(), 4, OutputPolicy::Jittery { seed });
            iut.offer_input("req");
            iut.delay(100)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn delay_respects_bound_and_splits() {
        let mut iut = SimulatedIut::new("eager", responder(), 4, OutputPolicy::Eager);
        iut.offer_input("req");
        // Only 2 ticks granted: not enough for the earliest reply at 4 ticks.
        assert_eq!(iut.delay(2), DelayOutcome::Quiet);
        match iut.delay(10) {
            DelayOutcome::Output { after, .. } => assert_eq!(after, 2),
            DelayOutcome::Quiet => panic!("expected an output"),
        }
    }

    #[test]
    fn inputs_are_ignored_when_not_enabled() {
        let mut iut = SimulatedIut::new("eager", responder(), 4, OutputPolicy::Eager);
        iut.offer_input("req");
        iut.offer_input("req"); // Busy has no req? edge
        assert_eq!(iut.ignored_inputs(), 1);
        iut.offer_input("nonexistent");
        assert_eq!(iut.ignored_inputs(), 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut iut = SimulatedIut::new("eager", responder(), 4, OutputPolicy::Eager);
        iut.offer_input("req");
        let _ = iut.delay(100);
        iut.reset();
        assert_eq!(iut.state().clocks, vec![0]);
        assert_eq!(iut.ignored_inputs(), 0);
        assert_eq!(iut.name(), "eager");
    }

    #[test]
    fn lazy_iut_without_deadline_stays_quiet() {
        // Same plant but no invariant: a lazy implementation never replies.
        let mut b = SystemBuilder::new("nodeadline");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let mut a = AutomatonBuilder::new("Plant");
        let idle = a.location("Idle").unwrap();
        let busy = a.location("Busy").unwrap();
        a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        a.add_edge(
            EdgeBuilder::new(busy, idle)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let mut iut = SimulatedIut::new("lazy", sys, 4, OutputPolicy::Lazy);
        iut.offer_input("req");
        assert_eq!(iut.delay(1000), DelayOutcome::Quiet);
        let _ = req;
        let _ = resp;
    }

    /// Closed network: `A` offers `out!` in `[1, 3]` (invariant `x <= 3`) and
    /// `B` accepts `out?` only once `x >= 2`, so the sync window is `[2, 3]`.
    fn closed_pair() -> System {
        let mut b = SystemBuilder::new("pair");
        let x = b.clock("x").unwrap();
        let out = b.output_channel("out").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        let l1 = a.location("L1").unwrap();
        a.set_invariant(l0, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        a.add_edge(
            EdgeBuilder::new(l0, l1)
                .output(out)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        let mut r = AutomatonBuilder::new("B");
        let m0 = r.location("M0").unwrap();
        let m1 = r.location("M1").unwrap();
        r.add_edge(
            EdgeBuilder::new(m0, m1)
                .input(out)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2)),
        );
        b.add_automaton(r.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn closed_view_intersects_sender_and_receiver_windows() {
        // Eager fires at the earliest instant *both* guards hold: x = 2, not
        // the sender-only earliest x = 1.
        let mut iut = SimulatedIut::closed("closed", closed_pair(), 4, OutputPolicy::Eager);
        match iut.delay(100) {
            DelayOutcome::Output { after, channel } => {
                assert_eq!(after, 8); // 2 time units at scale 4
                assert_eq!(channel, "out");
            }
            DelayOutcome::Quiet => panic!("expected an output"),
        }
        // Both automata moved: the sync consumed the sender and receiver edge.
        let moved: Vec<_> = [1, 1].map(tiga_model::LocationId::from_index).into();
        assert_eq!(iut.state().locations, moved);
    }

    #[test]
    fn open_view_of_the_same_network_fires_the_lone_half_edge() {
        let mut iut = SimulatedIut::new("open", closed_pair(), 4, OutputPolicy::Eager);
        match iut.delay(100) {
            DelayOutcome::Output { after, channel } => {
                assert_eq!(after, 4); // sender-only window starts at x = 1
                assert_eq!(channel, "out");
            }
            DelayOutcome::Quiet => panic!("expected an output"),
        }
    }

    #[test]
    fn closed_view_never_fires_an_unreceived_output() {
        // A lone `out!` self-loop with no receiver anywhere: the closed
        // network has no enabled sync, so the implementation stays quiet
        // (the open view would emit immediately).
        let mut b = SystemBuilder::new("lone");
        let out = b.output_channel("out").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.add_edge(EdgeBuilder::new(l0, l0).output(out));
        b.add_automaton(a.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let mut iut = SimulatedIut::closed("lone", sys.clone(), 4, OutputPolicy::Eager);
        assert_eq!(iut.delay(1000), DelayOutcome::Quiet);
        let mut open = SimulatedIut::new("lone-open", sys, 4, OutputPolicy::Eager);
        assert!(matches!(open.delay(1000), DelayOutcome::Output { .. }));
    }

    #[test]
    fn scripted_iut_replays_timetable() {
        let mut iut = ScriptedIut::new(
            "scripted",
            vec![(10, "b".to_string()), (4, "a".to_string())],
        );
        iut.offer_input("go");
        assert_eq!(
            iut.delay(6),
            DelayOutcome::Output {
                after: 4,
                channel: "a".to_string()
            }
        );
        assert_eq!(iut.delay(3), DelayOutcome::Quiet);
        assert_eq!(
            iut.delay(10),
            DelayOutcome::Output {
                after: 3,
                channel: "b".to_string()
            }
        );
        assert_eq!(iut.inputs_seen(), &[(0, "go".to_string())]);
        iut.reset();
        assert!(iut.inputs_seen().is_empty());
    }
}
