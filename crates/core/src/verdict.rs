//! Test verdicts and failure reasons.

use std::fmt;

/// Why a test run failed (a tioco violation observed during execution).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailReason {
    /// The implementation produced an output the specification does not allow
    /// at this point of the trace.
    UnexpectedOutput {
        /// Offending output channel name.
        channel: String,
        /// Absolute test time (in ticks) at which it was observed.
        at_ticks: i64,
    },
    /// The implementation stayed silent although the specification requires
    /// an output before this point (the invariant of the specification state
    /// expired).
    MissedDeadline {
        /// Absolute test time (in ticks) of the deadline.
        at_ticks: i64,
    },
    /// The implementation let time pass beyond what the specification allows.
    IllegalDelay {
        /// The delay (in ticks) that was refused by the specification.
        delay_ticks: i64,
        /// Absolute test time (in ticks) at which the delay started.
        at_ticks: i64,
    },
    /// The environment model of the game product cannot accept an output the
    /// implementation produced (violation of the environment-relativized
    /// conformance `rtioco`).
    EnvironmentRefusedOutput {
        /// Offending output channel name.
        channel: String,
        /// Absolute test time (in ticks).
        at_ticks: i64,
    },
    /// A safety purpose (`control: A[] φ`) was violated: the run entered a
    /// `¬φ` state.  Under a safe strategy this only happens when the
    /// implementation deviated from the specification.
    SafetyViolation {
        /// Human-readable description of the offending state.
        state: String,
        /// Absolute test time (in ticks).
        at_ticks: i64,
    },
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::UnexpectedOutput { channel, at_ticks } => {
                write!(f, "unexpected output `{channel}!` at t={at_ticks} ticks")
            }
            FailReason::MissedDeadline { at_ticks } => {
                write!(f, "required output not produced by t={at_ticks} ticks")
            }
            FailReason::IllegalDelay { delay_ticks, at_ticks } => write!(
                f,
                "implementation idle for {delay_ticks} ticks from t={at_ticks}, beyond what the specification allows"
            ),
            FailReason::EnvironmentRefusedOutput { channel, at_ticks } => write!(
                f,
                "output `{channel}!` at t={at_ticks} ticks is not accepted by the environment model"
            ),
            FailReason::SafetyViolation { state, at_ticks } => write!(
                f,
                "safety purpose violated at t={at_ticks} ticks in state {state}"
            ),
        }
    }
}

/// Why a test run was inconclusive (neither a conformance violation nor the
/// test purpose was reached).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InconclusiveReason {
    /// The run left the winning region of the strategy (cannot happen against
    /// a conformant implementation; reported rather than panicking).
    OffStrategy {
        /// Human-readable description of the state.
        state: String,
    },
    /// The configured step budget was exhausted.
    StepBudgetExhausted,
    /// The configured time budget was exhausted.
    TimeBudgetExhausted,
    /// The strategy prescribed waiting but neither an output nor a deadline
    /// can bound the wait (should not happen for winning strategies).
    UnboundedWait,
    /// The specification's invariant expired with no output available to
    /// discharge the deadline: the specification itself is timelocked, so no
    /// implementation can be blamed and a reachability purpose can no longer
    /// be met.  (A safety run ending in such a state passes instead — a
    /// blocked run trivially maintains its predicate forever.)
    SpecTimelock {
        /// Virtual time at which the specification got stuck, in ticks.
        at_ticks: i64,
    },
    /// A time-bounded reachability purpose (`control: A<><=T φ`) ran out of
    /// its deadline `T` before reaching `φ`.  Distinct from
    /// [`InconclusiveReason::TimeBudgetExhausted`]: the purpose's own bound
    /// expired, not the executor's observation budget.
    BoundExceeded {
        /// The purpose's time bound `T`, in model time units.
        bound: i64,
    },
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InconclusiveReason::OffStrategy { state } => {
                write!(f, "run left the strategy's winning region in state {state}")
            }
            InconclusiveReason::StepBudgetExhausted => write!(f, "step budget exhausted"),
            InconclusiveReason::TimeBudgetExhausted => write!(f, "time budget exhausted"),
            InconclusiveReason::UnboundedWait => write!(f, "strategy wait is unbounded"),
            InconclusiveReason::SpecTimelock { at_ticks } => write!(
                f,
                "specification is timelocked at t={at_ticks} ticks (deadline with no output to discharge it)"
            ),
            InconclusiveReason::BoundExceeded { bound } => write!(
                f,
                "purpose not reached within its time bound of {bound} time units"
            ),
        }
    }
}

/// The verdict of a test execution (the paper's `{pass, fail}`, extended with
/// an explicit inconclusive outcome for budget exhaustion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The test purpose was met with no conformance violation: a
    /// reachability purpose was reached, or a safety purpose was maintained
    /// for the whole observation budget.
    Pass,
    /// A tioco violation was observed.
    Fail(FailReason),
    /// The run ended without a verdict.
    Inconclusive(InconclusiveReason),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Pass`].
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Returns `true` for [`Verdict::Fail`].
    #[must_use]
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "PASS"),
            Verdict::Fail(r) => write!(f, "FAIL ({r})"),
            Verdict::Inconclusive(r) => write!(f, "INCONCLUSIVE ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Pass.is_pass());
        assert!(!Verdict::Pass.is_fail());
        let fail = Verdict::Fail(FailReason::MissedDeadline { at_ticks: 12 });
        assert!(fail.is_fail());
        assert!(!fail.is_pass());
        let inc = Verdict::Inconclusive(InconclusiveReason::StepBudgetExhausted);
        assert!(!inc.is_pass() && !inc.is_fail());
    }

    #[test]
    fn display_is_informative() {
        let v = Verdict::Fail(FailReason::UnexpectedOutput {
            channel: "dim".to_string(),
            at_ticks: 8,
        });
        let s = v.to_string();
        assert!(s.contains("FAIL"), "{s}");
        assert!(s.contains("dim"), "{s}");
        assert!(s.contains("t=8"), "{s}");
        let s = Verdict::Inconclusive(InconclusiveReason::UnboundedWait).to_string();
        assert!(s.contains("INCONCLUSIVE"), "{s}");
        let s = Verdict::Fail(FailReason::IllegalDelay {
            delay_ticks: 4,
            at_ticks: 2,
        })
        .to_string();
        assert!(s.contains("idle for 4"), "{s}");
    }
}
