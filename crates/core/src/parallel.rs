//! Re-export of the deterministic sharded work queue.
//!
//! The queue started life in this crate for the campaign engine; it now
//! lives in [`tiga_parallel`] so the solver (which `tiga-testing` depends
//! on) can shard its fixpoint engines over the same primitive without a
//! dependency cycle.  The `tiga_testing::{run_indexed, effective_threads}`
//! paths remain valid for existing callers.

pub use tiga_parallel::{effective_threads, run_indexed};
