//! Fault injection: mutation operators over plant models.
//!
//! The paper proves soundness (a failing run implies non-conformance) and
//! partial completeness (a purposeful non-conformance is caught by some
//! strategy).  To *exercise* those theorems experimentally — and to measure
//! fault-detection capability, listed as future work item 3 of the paper —
//! we derive faulty implementations from the plant model by syntactic
//! mutation and run them through [`crate::TestHarness::execute`].

use tiga_model::{
    Automaton, AutomatonBuilder, ChannelKind, CmpOp, Edge, Expr, Location, LocationId, ModelError,
    Sync, System, SystemBuilder,
};

/// A mutated plant model together with a description of the injected fault.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// Short unique name (used in reports).
    pub name: String,
    /// Human-readable description of the injected fault.
    pub description: String,
    /// The mutated model.
    pub system: System,
}

/// Which mutation operators to apply and how many mutants to keep.
#[derive(Clone, Debug)]
pub struct MutationConfig {
    /// Shift output-edge guard constants by ± this amount (time units).
    pub guard_shift: i64,
    /// Widen invariant constants by this amount (time units), letting the
    /// implementation answer later than the specification allows.
    pub invariant_widening: i64,
    /// Swap the channel of output edges with other output channels.
    pub swap_outputs: bool,
    /// Remove output edges entirely (missing outputs / missed deadlines).
    pub remove_outputs: bool,
    /// Drop clock resets from edges.
    pub drop_resets: bool,
    /// Upper bound on the number of generated mutants (0 = unlimited).
    pub max_mutants: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            guard_shift: 2,
            invariant_widening: 2,
            swap_outputs: true,
            remove_outputs: true,
            drop_resets: true,
            max_mutants: 0,
        }
    }
}

/// Rebuilds a system, transforming locations and edges.
///
/// Declarations (clocks, channels, variables) are copied verbatim and in
/// order, so all identifiers keep their meaning and edges can be cloned
/// as-is.
///
/// # Errors
///
/// Propagates [`ModelError`]s from the builders (should not occur when the
/// transformation keeps references valid).
pub fn rebuild_system<FL, FE>(
    system: &System,
    mut edit_location: FL,
    mut edit_edge: FE,
) -> Result<System, ModelError>
where
    FL: FnMut(&str, LocationId, &Location) -> Location,
    FE: FnMut(&str, usize, &Edge) -> Option<Edge>,
{
    let mut builder = SystemBuilder::new(system.name());
    for clock in system.clocks() {
        builder.clock(clock.name())?;
    }
    for channel in system.channels() {
        match channel.kind() {
            ChannelKind::Input => builder.input_channel(channel.name())?,
            ChannelKind::Output => builder.output_channel(channel.name())?,
            ChannelKind::Internal => builder.internal_channel(channel.name())?,
        };
    }
    for decl in system.vars().iter() {
        if decl.is_array() {
            builder.int_array(
                decl.name(),
                decl.size(),
                decl.lower(),
                decl.upper(),
                decl.initial(),
            )?;
        } else {
            builder.int_var(decl.name(), decl.lower(), decl.upper(), decl.initial())?;
        }
    }
    for automaton in system.automata() {
        builder.add_automaton(rebuild_automaton(
            automaton,
            &mut edit_location,
            &mut edit_edge,
        )?)?;
    }
    builder.build()
}

fn rebuild_automaton<FL, FE>(
    automaton: &Automaton,
    edit_location: &mut FL,
    edit_edge: &mut FE,
) -> Result<Automaton, ModelError>
where
    FL: FnMut(&str, LocationId, &Location) -> Location,
    FE: FnMut(&str, usize, &Edge) -> Option<Edge>,
{
    let mut b = AutomatonBuilder::new(automaton.name());
    for (idx, loc) in automaton.locations().iter().enumerate() {
        let id = LocationId::from_index(idx);
        let edited = edit_location(automaton.name(), id, loc);
        let new_id = b.location(&edited.name)?;
        debug_assert_eq!(new_id, id);
        b.set_invariant(new_id, edited.invariant);
        if edited.urgent {
            b.set_urgent(new_id);
        }
    }
    b.set_initial(automaton.initial());
    for (idx, edge) in automaton.edges().iter().enumerate() {
        if let Some(new_edge) = edit_edge(automaton.name(), idx, edge) {
            b.add_edge(new_edge);
        }
    }
    b.build()
}

fn identity_location(_aut: &str, _id: LocationId, loc: &Location) -> Location {
    loc.clone()
}

fn shift_expr(bound: &Expr, delta: i64) -> Expr {
    match bound.as_constant() {
        Some(c) => Expr::constant(c + delta),
        None => bound.clone() + Expr::constant(delta),
    }
}

/// Generates a pool of mutants from a plant model.
///
/// Every mutant differs from the plant by exactly one syntactic fault; the
/// name encodes the operator, automaton and edge/location so runs can be
/// traced back.
///
/// # Errors
///
/// Propagates [`ModelError`]s from model reconstruction.
pub fn generate_mutants(
    plant: &System,
    config: &MutationConfig,
) -> Result<Vec<Mutant>, ModelError> {
    let mut mutants = Vec::new();
    let output_channels: Vec<_> = plant
        .channels()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind() == ChannelKind::Output)
        .map(|(i, c)| (tiga_model::ChannelId::from_index(i), c.name().to_string()))
        .collect();

    for (aut_idx, automaton) in plant.automata().iter().enumerate() {
        let _ = aut_idx;
        for (edge_idx, edge) in automaton.edges().iter().enumerate() {
            let is_output_edge = matches!(edge.sync, Sync::Output(_));

            // 1. Shift guard constants of output edges (outputs too early /
            //    too late).
            if config.guard_shift != 0 && is_output_edge {
                for (ci, constraint) in edge.guard.clocks.iter().enumerate() {
                    for (delta, tag) in
                        [(-config.guard_shift, "early"), (config.guard_shift, "late")]
                    {
                        // Shifting a lower bound earlier / later changes when
                        // the output may be produced.
                        if !matches!(constraint.op, CmpOp::Ge | CmpOp::Gt | CmpOp::Eq) {
                            continue;
                        }
                        let mutated = rebuild_system(plant, identity_location, |aut, idx, e| {
                            if aut == automaton.name() && idx == edge_idx {
                                let mut e = e.clone();
                                e.guard.clocks[ci].bound =
                                    shift_expr(&e.guard.clocks[ci].bound, delta);
                                Some(e)
                            } else {
                                Some(e.clone())
                            }
                        })?;
                        mutants.push(Mutant {
                            name: format!("{}-e{edge_idx}-guard-{tag}", automaton.name()),
                            description: format!(
                                "output guard constant of edge #{edge_idx} in {} shifted by {delta}",
                                automaton.name()
                            ),
                            system: mutated,
                        });
                    }
                }
            }

            // 2. Swap the output channel.
            if config.swap_outputs && output_channels.len() > 1 {
                if let Sync::Output(ch) = edge.sync {
                    for (other, other_name) in &output_channels {
                        if *other == ch {
                            continue;
                        }
                        let mutated = rebuild_system(plant, identity_location, |aut, idx, e| {
                            if aut == automaton.name() && idx == edge_idx {
                                let mut e = e.clone();
                                e.sync = Sync::Output(*other);
                                Some(e)
                            } else {
                                Some(e.clone())
                            }
                        })?;
                        mutants.push(Mutant {
                            name: format!("{}-e{edge_idx}-swap-{other_name}", automaton.name()),
                            description: format!(
                                "output of edge #{edge_idx} in {} replaced by `{other_name}!`",
                                automaton.name()
                            ),
                            system: mutated,
                        });
                    }
                }
            }

            // 3. Remove the output edge entirely.
            if config.remove_outputs && is_output_edge {
                let mutated = rebuild_system(plant, identity_location, |aut, idx, e| {
                    if aut == automaton.name() && idx == edge_idx {
                        None
                    } else {
                        Some(e.clone())
                    }
                })?;
                mutants.push(Mutant {
                    name: format!("{}-e{edge_idx}-missing-output", automaton.name()),
                    description: format!(
                        "output edge #{edge_idx} of {} removed (quiescence fault)",
                        automaton.name()
                    ),
                    system: mutated,
                });
            }

            // 4. Drop clock resets.
            if config.drop_resets && !edge.resets.is_empty() {
                let mutated = rebuild_system(plant, identity_location, |aut, idx, e| {
                    if aut == automaton.name() && idx == edge_idx {
                        let mut e = e.clone();
                        e.resets.clear();
                        Some(e)
                    } else {
                        Some(e.clone())
                    }
                })?;
                mutants.push(Mutant {
                    name: format!("{}-e{edge_idx}-no-reset", automaton.name()),
                    description: format!(
                        "clock resets removed from edge #{edge_idx} of {}",
                        automaton.name()
                    ),
                    system: mutated,
                });
            }
        }

        // 5. Widen invariants (replies later than allowed).
        if config.invariant_widening != 0 {
            for (loc_idx, loc) in automaton.locations().iter().enumerate() {
                if loc.invariant.is_empty() {
                    continue;
                }
                let widening = config.invariant_widening;
                let mutated = rebuild_system(
                    plant,
                    |aut, id, l| {
                        if aut == automaton.name() && id.index() == loc_idx {
                            let mut l = l.clone();
                            for c in &mut l.invariant {
                                if matches!(c.op, CmpOp::Le | CmpOp::Lt) {
                                    c.bound = shift_expr(&c.bound, widening);
                                }
                            }
                            l
                        } else {
                            l.clone()
                        }
                    },
                    |_, _, e| Some(e.clone()),
                )?;
                mutants.push(Mutant {
                    name: format!("{}-{}-late-deadline", automaton.name(), loc.name),
                    description: format!(
                        "invariant of {}.{} widened by {widening} (outputs may come too late)",
                        automaton.name(),
                        loc.name
                    ),
                    system: mutated,
                });
            }
        }
    }

    if config.max_mutants > 0 && mutants.len() > config.max_mutants {
        mutants.truncate(config.max_mutants);
    }
    Ok(mutants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, ClockConstraint, EdgeBuilder, SystemBuilder};

    fn responder() -> System {
        let mut b = SystemBuilder::new("responder");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let err = b.output_channel("error").unwrap();
        let count = b.int_var("count", 0, 5, 0).unwrap();
        let mut a = AutomatonBuilder::new("Plant");
        let idle = a.location("Idle").unwrap();
        let busy = a.location("Busy").unwrap();
        a.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        a.add_edge(
            EdgeBuilder::new(busy, idle)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1))
                .set(count, Expr::var(count) + Expr::constant(1)),
        );
        a.add_edge(EdgeBuilder::new(busy, idle).output(err));
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rebuild_identity_preserves_system() {
        let sys = responder();
        let copy = rebuild_system(&sys, |_, _, l| l.clone(), |_, _, e| Some(e.clone())).unwrap();
        assert_eq!(sys, copy);
    }

    #[test]
    fn rebuild_can_drop_edges() {
        let sys = responder();
        let fewer = rebuild_system(
            &sys,
            |_, _, l| l.clone(),
            |_, idx, e| if idx == 2 { None } else { Some(e.clone()) },
        )
        .unwrap();
        assert_eq!(
            fewer.automata()[0].edges().len(),
            sys.automata()[0].edges().len() - 1
        );
    }

    #[test]
    fn generates_a_diverse_mutant_pool() {
        let sys = responder();
        let mutants = generate_mutants(&sys, &MutationConfig::default()).unwrap();
        assert!(mutants.len() >= 6, "got {} mutants", mutants.len());
        // All operators are represented.
        for tag in [
            "guard-early",
            "guard-late",
            "swap",
            "missing-output",
            "no-reset",
            "late-deadline",
        ] {
            assert!(
                mutants.iter().any(|m| m.name.contains(tag)),
                "no mutant for operator {tag}: {:?}",
                mutants.iter().map(|m| &m.name).collect::<Vec<_>>()
            );
        }
        // Each mutant differs from the original.
        for m in &mutants {
            assert_ne!(m.system, sys, "mutant {} is identical to the plant", m.name);
            assert!(!m.description.is_empty());
        }
        // Names are unique.
        let mut names: Vec<_> = mutants.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), mutants.len());
    }

    #[test]
    fn mutant_cap_is_respected() {
        let sys = responder();
        let config = MutationConfig {
            max_mutants: 3,
            ..MutationConfig::default()
        };
        let mutants = generate_mutants(&sys, &config).unwrap();
        assert_eq!(mutants.len(), 3);
    }

    #[test]
    fn disabling_operators_produces_no_such_mutants() {
        let sys = responder();
        let config = MutationConfig {
            guard_shift: 0,
            invariant_widening: 0,
            swap_outputs: false,
            remove_outputs: false,
            drop_resets: false,
            max_mutants: 0,
        };
        let mutants = generate_mutants(&sys, &config).unwrap();
        assert!(mutants.is_empty());
    }
}
