//! # tiga-testing — game-based conformance testing of real-time systems
//!
//! This crate implements the primary contribution of
//! *"A Game-Theoretic Approach to Real-Time System Testing"*
//! (David, Larsen, Li, Nielsen — DATE 2008): using winning strategies of
//! timed games as test cases for uncontrollable real-time systems, and
//! executing them against black-box implementations under the **tioco**
//! conformance relation.
//!
//! The pieces map one-to-one onto the paper's framework (Fig. 4):
//!
//! * [`TestHarness`] — SPEC (TIOGA) + test purpose → winning strategy
//!   (via [`tiga_solver`]), bundled as an executable test case;
//! * [`TestExecutor`] — Algorithm 3.1: drive the implementation with the
//!   strategy, observing outputs and delays;
//! * [`SpecMonitor`] — the tioco check `Out(i After σ) ⊆ Out(s After σ)`
//!   performed online on every observation;
//! * [`Verdict`] — `pass` / `fail` (plus an explicit inconclusive outcome);
//! * [`Iut`], [`SimulatedIut`] — the black-box implementation interface and a
//!   simulator realizing the paper's test hypotheses (deterministic,
//!   input-enabled implementations with concrete output schedules);
//! * [`generate_mutants`], [`run_mutation_campaign`], [`RandomTester`] —
//!   fault injection and the fault-detection experiments (the paper's
//!   future-work item on test effectiveness).
//!
//! # Example
//!
//! ```
//! use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
//! use tiga_testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Plant: after `req?` it must reply `resp!` within [1, 3] time units.
//! let mut b = SystemBuilder::new("demo");
//! let x = b.clock("x")?;
//! let req = b.input_channel("req")?;
//! let resp = b.output_channel("resp")?;
//! let mut plant = AutomatonBuilder::new("Plant");
//! let idle = plant.location("Idle")?;
//! let busy = plant.location("Busy")?;
//! let done = plant.location("Done")?;
//! plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
//! plant.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
//! plant.add_edge(
//!     EdgeBuilder::new(busy, done)
//!         .output(resp)
//!         .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
//! );
//! b.add_automaton(plant.build()?)?;
//! // Environment model: may send `req` and receive `resp` at any time.
//! let mut user = AutomatonBuilder::new("User");
//! let u = user.location("U")?;
//! user.add_edge(EdgeBuilder::new(u, u).output(req));
//! user.add_edge(EdgeBuilder::new(u, u).input(resp));
//! b.add_automaton(user.build()?)?;
//! let product = b.build()?;
//!
//! // Synthesize the test case for the purpose "reach Plant.Done".
//! let harness = TestHarness::synthesize(
//!     product.clone(),
//!     product.clone(),
//!     "control: A<> Plant.Done",
//!     TestConfig::default(),
//! )?;
//!
//! // Run it against a (conformant) simulated implementation.
//! let mut iut = SimulatedIut::new("impl", product, 4, OutputPolicy::Lazy);
//! let report = harness.execute(&mut iut)?;
//! assert!(report.verdict.is_pass());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod exec;
mod harness;
mod iut;
mod monitor;
mod mutation;
mod parallel;
mod trace;
mod verdict;

pub use campaign::{
    default_policies, derive_run_seed, run_mutation_campaign, run_mutation_campaign_with,
    run_random_campaign, run_random_campaign_with, CampaignOptions, CampaignRun, CampaignSummary,
    RandomTester,
};
pub use exec::{TestConfig, TestExecutor, TestReport};
pub use harness::{HarnessError, TestHarness};
pub use iut::{DelayOutcome, Iut, OutputPolicy, ScriptedIut, SimulatedIut};
pub use monitor::{MonitorOutcome, SpecMonitor};
pub use mutation::{generate_mutants, rebuild_system, Mutant, MutationConfig};
pub use parallel::{effective_threads, run_indexed};
pub use trace::{DisplayTrace, TimedTrace, TraceStep};
pub use verdict::{FailReason, InconclusiveReason, Verdict};
