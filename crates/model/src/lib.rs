//! # tiga-model — Timed I/O Game Automata
//!
//! Modelling framework for the reproduction of *"A Game-Theoretic Approach to
//! Real-Time System Testing"* (David, Larsen, Li, Nielsen — DATE 2008).
//!
//! A model is a [`System`]: a network of timed automata whose actions are
//! partitioned, via their synchronization channels, into *controllable*
//! inputs (offered by the tester/environment) and *uncontrollable* outputs
//! (produced by the plant).  This is exactly the Timed I/O Game Automaton
//! (TIOGA) setting of the paper.
//!
//! The crate provides:
//!
//! * an expression language over bounded integer variables ([`Expr`]),
//! * automata with guards, invariants, resets and updates
//!   ([`Automaton`], [`Edge`], [`Location`]),
//! * fluent builders ([`SystemBuilder`], [`AutomatonBuilder`], [`EdgeBuilder`]),
//! * symbolic (zone-based) semantics used by the timed-game solver
//!   ([`DiscreteState`], [`SymbolicState`], [`JointEdge`]),
//! * concrete tick-based semantics — the underlying TIOTS — used by the
//!   conformance monitor and simulated implementations ([`Interpreter`],
//!   [`ConcreteState`]).
//!
//! # Example
//!
//! Building the user automaton of the paper's Smart Light example (Fig. 3):
//!
//! ```
//! use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
//!
//! # fn main() -> Result<(), tiga_model::ModelError> {
//! let mut builder = SystemBuilder::new("smart-light");
//! let z = builder.clock("z")?;
//! let touch = builder.input_channel("touch")?;
//!
//! let mut user = AutomatonBuilder::new("User");
//! let idle = user.location("Init")?;
//! let work = user.location("Work")?;
//! user.add_edge(
//!     EdgeBuilder::new(idle, work)
//!         .output(touch) // the user *sends* touch to the light
//!         .guard_clock(ClockConstraint::new(z, CmpOp::Ge, 1))
//!         .reset(z),
//! );
//! user.add_edge(EdgeBuilder::new(work, idle));
//! builder.add_automaton(user.build()?)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod builder;
mod decl;
mod error;
mod explorer;
mod expr;
mod ids;
mod symbolic;
mod system;
mod tiots;

pub use automaton::{
    clock_cmp, clock_ref, Assignment, Automaton, ClockConstraint, ClockReset, Edge, Guard,
    Location, Sync,
};
pub use builder::{AutomatonBuilder, EdgeBuilder, SystemBuilder};
pub use decl::{Action, Channel, ChannelKind, ClockDecl, ClockRef, IoDir, VarDecl, VarTable};
pub use error::{EvalError, ModelError};
pub use explorer::{CandidateStep, ExploredState, Explorer, StateIndex, SuccessorStep};
pub use expr::{CmpOp, DisplayExpr, Expr};
pub use ids::{AutomatonId, ChannelId, ClockId, EdgeId, LocationId, VarId};
pub use symbolic::{DiscreteState, DisplayDiscreteState, JointEdge, SymbolicState};
pub use system::System;
pub use tiga_dbm::MAX_CONSTANT;
pub use tiots::{ConcreteState, DisplayConcreteState, EdgeRef, Interpreter};
