//! Integer/boolean expressions over bounded discrete variables.
//!
//! Guards, invariant bounds, variable updates and test purposes all share the
//! same small expression language.  Expressions evaluate to `i64`; boolean
//! results are encoded as `0` (false) / `1` (true), in the style of the
//! UPPAAL modelling language.

use crate::decl::VarTable;
use crate::error::EvalError;
use crate::ids::VarId;
use std::fmt;

/// Comparison operators usable in data guards and clock constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with operands swapped (`a op b` ⇔ `b op.flip() a`).
    #[must_use]
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An integer-valued expression over the discrete variables of a system.
///
/// Boolean connectives treat any non-zero value as true and produce `0`/`1`.
///
/// # Examples
///
/// ```
/// use tiga_model::{Expr, CmpOp};
///
/// // 2 + 3 == 5  evaluates to 1 (true) with no variables in scope.
/// let e = (Expr::constant(2) + Expr::constant(3)).cmp(CmpOp::Eq, Expr::constant(5));
/// # use tiga_model::VarTable;
/// let vars = VarTable::new();
/// assert_eq!(e.eval(&vars, &[]).unwrap(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Value of a scalar variable.
    Var(VarId),
    /// Value of an array element, with a computed index.
    Index(VarId, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean-style division (rounds toward zero); division by zero is an
    /// evaluation error.
    Div(Box<Expr>, Box<Expr>),
    /// Remainder; modulo zero is an evaluation error.
    Mod(Box<Expr>, Box<Expr>),
    /// Comparison producing `0` or `1`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (short-circuiting).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (short-circuiting).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conditional expression `if c then a else b`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal.
    #[must_use]
    pub fn constant(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// The boolean constant `true` (encoded as `1`).
    #[must_use]
    pub fn tt() -> Expr {
        Expr::Const(1)
    }

    /// The boolean constant `false` (encoded as `0`).
    #[must_use]
    pub fn ff() -> Expr {
        Expr::Const(0)
    }

    /// Reference to a scalar variable.
    #[must_use]
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Reference to an array element.
    #[must_use]
    pub fn index(array: VarId, idx: Expr) -> Expr {
        Expr::Index(array, Box::new(idx))
    }

    /// `self op other`, producing `0`/`1`.
    #[must_use]
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self == other`.
    #[must_use]
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self != other`.
    #[must_use]
    pub fn ne(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ne, other)
    }

    /// `self < other`.
    #[must_use]
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    #[must_use]
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self > other`.
    #[must_use]
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    #[must_use]
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// Logical conjunction.
    #[must_use]
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Logical disjunction.
    #[must_use]
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Logical negation.
    #[must_use]
    pub fn negated(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Conditional expression.
    #[must_use]
    pub fn ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Ite(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Evaluates the expression against a variable table and store.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on out-of-bounds array accesses, division by
    /// zero or arithmetic overflow.
    pub fn eval(&self, table: &VarTable, store: &[i64]) -> Result<i64, EvalError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(v) => Ok(store[table.offset(*v)]),
            Expr::Index(v, idx) => {
                let i = idx.eval(table, store)?;
                let decl = table.decl(*v);
                if i < 0 || i as usize >= decl.size() {
                    return Err(EvalError::IndexOutOfBounds {
                        name: decl.name().to_string(),
                        index: i,
                        size: decl.size(),
                    });
                }
                Ok(store[table.offset(*v) + i as usize])
            }
            Expr::Neg(e) => e
                .eval(table, store)?
                .checked_neg()
                .ok_or(EvalError::Overflow),
            Expr::Add(a, b) => a
                .eval(table, store)?
                .checked_add(b.eval(table, store)?)
                .ok_or(EvalError::Overflow),
            Expr::Sub(a, b) => a
                .eval(table, store)?
                .checked_sub(b.eval(table, store)?)
                .ok_or(EvalError::Overflow),
            Expr::Mul(a, b) => a
                .eval(table, store)?
                .checked_mul(b.eval(table, store)?)
                .ok_or(EvalError::Overflow),
            Expr::Div(a, b) => {
                let d = b.eval(table, store)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.eval(table, store)?
                    .checked_div(d)
                    .ok_or(EvalError::Overflow)
            }
            Expr::Mod(a, b) => {
                let d = b.eval(table, store)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.eval(table, store)?
                    .checked_rem(d)
                    .ok_or(EvalError::Overflow)
            }
            Expr::Cmp(op, a, b) => Ok(i64::from(
                op.apply(a.eval(table, store)?, b.eval(table, store)?),
            )),
            Expr::And(a, b) => {
                if a.eval(table, store)? == 0 {
                    Ok(0)
                } else {
                    Ok(i64::from(b.eval(table, store)? != 0))
                }
            }
            Expr::Or(a, b) => {
                if a.eval(table, store)? != 0 {
                    Ok(1)
                } else {
                    Ok(i64::from(b.eval(table, store)? != 0))
                }
            }
            Expr::Not(e) => Ok(i64::from(e.eval(table, store)? == 0)),
            Expr::Ite(c, t, e) => {
                if c.eval(table, store)? != 0 {
                    t.eval(table, store)
                } else {
                    e.eval(table, store)
                }
            }
        }
    }

    /// Evaluates the expression as a boolean (non-zero is true).
    ///
    /// # Errors
    ///
    /// Same as [`Expr::eval`].
    pub fn eval_bool(&self, table: &VarTable, store: &[i64]) -> Result<bool, EvalError> {
        Ok(self.eval(table, store)? != 0)
    }

    /// Returns the constant value if the expression contains no variable
    /// references (useful for extrapolation-bound analysis).
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        let empty = VarTable::new();
        if self.references_vars() {
            None
        } else {
            self.eval(&empty, &[]).ok()
        }
    }

    /// Returns `true` if the expression mentions any variable.
    #[must_use]
    pub fn references_vars(&self) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(_) | Expr::Index(_, _) => true,
            Expr::Neg(e) | Expr::Not(e) => e.references_vars(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => a.references_vars() || b.references_vars(),
            Expr::Ite(c, t, e) => c.references_vars() || t.references_vars() || e.references_vars(),
        }
    }

    /// Renders the expression with variable names resolved through `table`.
    #[must_use]
    pub fn display<'a>(&'a self, table: &'a VarTable) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, table }
    }
}

/// Helper returned by [`Expr::display`].
pub struct DisplayExpr<'a> {
    expr: &'a Expr,
    table: &'a VarTable,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, table: &VarTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(v) => write!(f, "{v}"),
                Expr::Var(v) => write!(f, "{}", table.decl(*v).name()),
                Expr::Index(v, i) => {
                    write!(f, "{}[", table.decl(*v).name())?;
                    go(i, table, f)?;
                    write!(f, "]")
                }
                Expr::Neg(e) => {
                    write!(f, "-(")?;
                    go(e, table, f)?;
                    write!(f, ")")
                }
                Expr::Add(a, b) => bin(a, "+", b, table, f),
                Expr::Sub(a, b) => bin(a, "-", b, table, f),
                Expr::Mul(a, b) => bin(a, "*", b, table, f),
                Expr::Div(a, b) => bin(a, "/", b, table, f),
                Expr::Mod(a, b) => bin(a, "%", b, table, f),
                Expr::Cmp(op, a, b) => bin(a, &op.to_string(), b, table, f),
                Expr::And(a, b) => bin(a, "&&", b, table, f),
                Expr::Or(a, b) => bin(a, "||", b, table, f),
                Expr::Not(e) => {
                    write!(f, "!(")?;
                    go(e, table, f)?;
                    write!(f, ")")
                }
                Expr::Ite(c, t, e) => {
                    write!(f, "(")?;
                    go(c, table, f)?;
                    write!(f, " ? ")?;
                    go(t, table, f)?;
                    write!(f, " : ")?;
                    go(e, table, f)?;
                    write!(f, ")")
                }
            }
        }
        fn bin(
            a: &Expr,
            op: &str,
            b: &Expr,
            table: &VarTable,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            write!(f, "(")?;
            go(a, table, f)?;
            write!(f, " {op} ")?;
            go(b, table, f)?;
            write!(f, ")")
        }
        go(self.expr, self.table, f)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;

    /// Builds the sum expression `self + other`.
    fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;

    /// Builds the difference expression `self - other`.
    fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;

    /// Builds the product expression `self * other`.
    fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::Const(i64::from(v))
    }
}

impl From<bool> for Expr {
    fn from(v: bool) -> Self {
        Expr::Const(i64::from(v))
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Self {
        Expr::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::VarTable;

    fn table_with(vars: &[(&str, usize, i64)]) -> (VarTable, Vec<i64>) {
        let mut t = VarTable::new();
        let mut store = Vec::new();
        for (name, size, init) in vars {
            t.declare(name, *size, -100, 100, *init).unwrap();
            store.extend(std::iter::repeat_n(*init, *size));
        }
        (t, store)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let (t, s) = table_with(&[]);
        let e = (Expr::constant(7) - Expr::constant(3)) * Expr::constant(2);
        assert_eq!(e.eval(&t, &s).unwrap(), 8);
        let c = Expr::constant(8).ge(Expr::constant(8));
        assert_eq!(c.eval(&t, &s).unwrap(), 1);
        let c = Expr::constant(8).lt(Expr::constant(8));
        assert_eq!(c.eval(&t, &s).unwrap(), 0);
    }

    #[test]
    fn variables_and_arrays() {
        let (t, mut s) = table_with(&[("n", 1, 5), ("inUse", 3, 0)]);
        let n = t.lookup("n").unwrap();
        let in_use = t.lookup("inUse").unwrap();
        s[t.offset(in_use) + 2] = 1;
        assert_eq!(Expr::var(n).eval(&t, &s).unwrap(), 5);
        assert_eq!(
            Expr::index(in_use, Expr::constant(2)).eval(&t, &s).unwrap(),
            1
        );
        assert_eq!(
            Expr::index(in_use, Expr::constant(0)).eval(&t, &s).unwrap(),
            0
        );
        let err = Expr::index(in_use, Expr::constant(3))
            .eval(&t, &s)
            .unwrap_err();
        assert!(matches!(err, EvalError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        let (t, s) = table_with(&[("z", 1, 0)]);
        let z = t.lookup("z").unwrap();
        // false && (1/0 == 0) must not error thanks to short-circuiting.
        let e = Expr::var(z).ne(Expr::constant(0)).and(
            Expr::Div(Box::new(Expr::constant(1)), Box::new(Expr::var(z))).eq(Expr::constant(0)),
        );
        assert_eq!(e.eval(&t, &s).unwrap(), 0);
        let e = Expr::tt().or(
            Expr::Div(Box::new(Expr::constant(1)), Box::new(Expr::var(z))).eq(Expr::constant(0)),
        );
        assert_eq!(e.eval(&t, &s).unwrap(), 1);
    }

    #[test]
    fn division_by_zero_is_reported() {
        let (t, s) = table_with(&[]);
        let e = Expr::Div(Box::new(Expr::constant(1)), Box::new(Expr::constant(0)));
        assert_eq!(e.eval(&t, &s).unwrap_err(), EvalError::DivisionByZero);
        let e = Expr::Mod(Box::new(Expr::constant(1)), Box::new(Expr::constant(0)));
        assert_eq!(e.eval(&t, &s).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn as_constant_detects_closed_expressions() {
        let (t, _) = table_with(&[("n", 1, 5)]);
        let n = t.lookup("n").unwrap();
        assert_eq!(
            (Expr::constant(3) + Expr::constant(4)).as_constant(),
            Some(7)
        );
        assert_eq!(Expr::var(n).as_constant(), None);
        assert!(Expr::var(n).references_vars());
        assert!(!Expr::constant(3).references_vars());
    }

    #[test]
    fn conditional_expression() {
        let (t, s) = table_with(&[("n", 1, 5)]);
        let n = t.lookup("n").unwrap();
        let e = Expr::ite(
            Expr::var(n).ge(Expr::constant(3)),
            Expr::constant(10),
            Expr::constant(20),
        );
        assert_eq!(e.eval(&t, &s).unwrap(), 10);
    }

    #[test]
    fn display_resolves_names() {
        let (t, _) = table_with(&[("count", 1, 0), ("buf", 2, 0)]);
        let count = t.lookup("count").unwrap();
        let buf = t.lookup("buf").unwrap();
        let e = Expr::var(count)
            .ge(Expr::constant(1))
            .and(Expr::index(buf, Expr::constant(0)).eq(Expr::constant(2)));
        let s = format!("{}", e.display(&t));
        assert!(s.contains("count"), "{s}");
        assert!(s.contains("buf[0]"), "{s}");
    }

    #[test]
    fn cmp_op_flipping() {
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Ge.apply(2, 2));
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        // a op b == b op.flipped() a for all ops on a sample.
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.apply(a, b), op.flipped().apply(b, a));
            }
        }
    }
}
