//! Error types for model construction and evaluation.

use std::fmt;

/// Errors raised while building or analysing a model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A name (clock, channel, variable, automaton or location) was declared
    /// twice in the same scope.
    DuplicateName(String),
    /// A lookup by name failed.
    UnknownName(String),
    /// An identifier referred to an entity outside the system being built.
    InvalidReference(String),
    /// An automaton has no initial location.
    MissingInitialLocation(String),
    /// An expression could not be evaluated.
    Eval(EvalError),
    /// A guard used a form that cannot be represented as a convex clock
    /// constraint (e.g. `x != 3`).
    NonConvexClockConstraint(String),
    /// A clock was reset to a negative value.
    NegativeClockReset(String),
    /// An assignment pushed a bounded integer variable outside its range.
    VariableOutOfRange {
        /// Variable name.
        name: String,
        /// Value that violated the declared range.
        value: i64,
    },
    /// The model is structurally invalid for the requested analysis.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            ModelError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            ModelError::InvalidReference(n) => write!(f, "invalid reference to `{n}`"),
            ModelError::MissingInitialLocation(a) => {
                write!(f, "automaton `{a}` has no initial location")
            }
            ModelError::Eval(e) => write!(f, "evaluation error: {e}"),
            ModelError::NonConvexClockConstraint(s) => {
                write!(f, "clock constraint `{s}` is not convex")
            }
            ModelError::NegativeClockReset(s) => {
                write!(f, "clock reset `{s}` produces a negative value")
            }
            ModelError::VariableOutOfRange { name, value } => {
                write!(
                    f,
                    "assignment pushes variable `{name}` out of range (value {value})"
                )
            }
            ModelError::Invalid(s) => write!(f, "invalid model: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<EvalError> for ModelError {
    fn from(e: EvalError) -> Self {
        ModelError::Eval(e)
    }
}

/// Errors raised while evaluating an expression against a variable store.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// An array was indexed outside its declared size.
    IndexOutOfBounds {
        /// Array variable name (or index if the name is unavailable).
        name: String,
        /// Offending index value.
        index: i64,
        /// Declared array size.
        size: usize,
    },
    /// Division (or modulo) by zero.
    DivisionByZero,
    /// A scalar variable was indexed, or an array used without an index.
    NotAnArray(String),
    /// Arithmetic overflowed 64-bit integers.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::IndexOutOfBounds { name, index, size } => {
                write!(f, "index {index} out of bounds for `{name}` (size {size})")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::NotAnArray(n) => write!(f, "`{n}` used with the wrong arity"),
            EvalError::Overflow => write!(f, "integer overflow during evaluation"),
        }
    }
}

impl std::error::Error for EvalError {}
