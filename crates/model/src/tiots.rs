//! Concrete (dense-time, fixed-point tick) semantics of a system — the
//! Timed I/O Transition System (TIOTS) underlying a TIOGA.
//!
//! Time is represented as integer *ticks* with a configurable number of ticks
//! per model time unit, which keeps all guard and invariant comparisons exact.
//! Two views are provided:
//!
//! * the **open** view treats input/output channels as observable actions of
//!   the system seen as a plant (used by the conformance monitor and by the
//!   simulated implementations under test), and
//! * the **closed** view synchronizes output and input edges of different
//!   automata in the network (used by the test-execution engine to track the
//!   state of the plant∥environment game product).

use crate::automaton::Sync;
use crate::decl::ChannelKind;
use crate::error::ModelError;
use crate::ids::{AutomatonId, ChannelId, EdgeId, LocationId};
use crate::system::System;
use std::fmt;

/// A concrete state: locations, variable values and clock values in ticks.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConcreteState {
    /// Current location of each automaton.
    pub locations: Vec<LocationId>,
    /// Flattened discrete-variable values.
    pub vars: Vec<i64>,
    /// Clock values in ticks (one per declared clock).
    pub clocks: Vec<i64>,
}

impl ConcreteState {
    /// Renders the state with names resolved through the system.
    #[must_use]
    pub fn display<'a>(&'a self, interpreter: &'a Interpreter<'a>) -> DisplayConcreteState<'a> {
        DisplayConcreteState {
            state: self,
            interpreter,
        }
    }
}

/// Helper returned by [`ConcreteState::display`].
pub struct DisplayConcreteState<'a> {
    state: &'a ConcreteState,
    interpreter: &'a Interpreter<'a>,
}

impl fmt::Display for DisplayConcreteState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sys = self.interpreter.system;
        for (i, loc) in self.state.locations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let aut = &sys.automata()[i];
            write!(f, "{}.{}", aut.name(), aut.location(*loc).name)?;
        }
        write!(f, " |")?;
        for (i, c) in sys.clocks().iter().enumerate() {
            let ticks = self.state.clocks[i];
            let scale = self.interpreter.scale;
            write!(f, " {}={}", c.name(), ticks as f64 / scale as f64)?;
        }
        if !self.state.vars.is_empty() {
            write!(f, " |")?;
            for d in sys.vars().iter() {
                for k in 0..d.size() {
                    if d.is_array() {
                        write!(
                            f,
                            " {}[{}]={}",
                            d.name(),
                            k,
                            self.state.vars[d.offset() + k]
                        )?;
                    } else {
                        write!(f, " {}={}", d.name(), self.state.vars[d.offset()])?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A single-automaton edge reference, used when firing open transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Automaton owning the edge.
    pub automaton: AutomatonId,
    /// Edge within the automaton.
    pub edge: EdgeId,
}

/// The concrete-semantics interpreter for a system.
///
/// # Examples
///
/// ```
/// use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, Interpreter, SystemBuilder};
///
/// # fn main() -> Result<(), tiga_model::ModelError> {
/// let mut b = SystemBuilder::new("lamp");
/// let x = b.clock("x")?;
/// let press = b.input_channel("press")?;
/// let mut lamp = AutomatonBuilder::new("Lamp");
/// let off = lamp.location("Off")?;
/// let on = lamp.location("On")?;
/// lamp.add_edge(EdgeBuilder::new(off, on).input(press).reset(x));
/// lamp.add_edge(
///     EdgeBuilder::new(on, off)
///         .input(press)
///         .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
/// );
/// b.add_automaton(lamp.build()?)?;
/// let system = b.build()?;
///
/// let interp = Interpreter::new(&system, 4)?; // 4 ticks per time unit
/// let s0 = interp.initial_state()?;
/// let s1 = interp.after_input(&s0, press)?.expect("press accepted");
/// // Pressing again immediately is refused by the guard x >= 1.
/// assert!(interp.after_input(&s1, press)?.is_none());
/// let s2 = interp.delayed(&s1, 4)?.expect("delay allowed");
/// assert!(interp.after_input(&s2, press)?.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Interpreter<'a> {
    system: &'a System,
    scale: i64,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with `scale` ticks per model time unit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if `scale` is not positive.
    pub fn new(system: &'a System, scale: i64) -> Result<Self, ModelError> {
        if scale <= 0 {
            return Err(ModelError::Invalid(format!(
                "tick scale must be positive, got {scale}"
            )));
        }
        Ok(Interpreter { system, scale })
    }

    /// The interpreted system.
    #[must_use]
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// Ticks per model time unit.
    #[must_use]
    pub fn scale(&self) -> i64 {
        self.scale
    }

    /// The initial concrete state (all clocks zero).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the initial state violates an
    /// invariant, or propagates evaluation errors.
    pub fn initial_state(&self) -> Result<ConcreteState, ModelError> {
        let state = ConcreteState {
            locations: self.system.automata().iter().map(|a| a.initial()).collect(),
            vars: self.system.vars().initial_store(),
            clocks: vec![0; self.system.clocks().len()],
        };
        if !self.invariants_hold(&state)? {
            return Err(ModelError::Invalid(
                "initial state violates an invariant".to_string(),
            ));
        }
        Ok(state)
    }

    /// Checks every location invariant in the state.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from invariant bounds.
    pub fn invariants_hold(&self, state: &ConcreteState) -> Result<bool, ModelError> {
        for (i, aut) in self.system.automata().iter().enumerate() {
            let loc = aut.location(state.locations[i]);
            for c in &loc.invariant {
                if !c.holds_concrete(&state.clocks, self.scale, self.system.vars(), &state.vars)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Maximum delay (in ticks) permitted by the invariants, or `None` if
    /// unbounded.  Urgent locations yield `Some(0)`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from invariant bounds.
    pub fn max_delay(&self, state: &ConcreteState) -> Result<Option<i64>, ModelError> {
        if self.system.is_urgent_concrete(state) {
            return Ok(Some(0));
        }
        let mut max: Option<i64> = None;
        let mut tighten = |candidate: i64| {
            let candidate = candidate.max(0);
            max = Some(match max {
                None => candidate,
                Some(m) => m.min(candidate),
            });
        };
        for (i, aut) in self.system.automata().iter().enumerate() {
            let loc = aut.location(state.locations[i]);
            for c in &loc.invariant {
                // Diagonal constraints are delay-invariant.
                if c.minus.is_some() {
                    continue;
                }
                let m = c.bound.eval(self.system.vars(), &state.vars)? * self.scale;
                let v = state.clocks[c.left.index()];
                match c.op {
                    crate::expr::CmpOp::Le | crate::expr::CmpOp::Eq => tighten(m - v),
                    crate::expr::CmpOp::Lt => tighten(m - v - 1),
                    _ => {}
                }
            }
        }
        Ok(max)
    }

    /// Returns the state after letting `ticks` time pass, or `None` if an
    /// invariant is violated on the way.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; negative delays are a model error.
    pub fn delayed(
        &self,
        state: &ConcreteState,
        ticks: i64,
    ) -> Result<Option<ConcreteState>, ModelError> {
        if ticks < 0 {
            return Err(ModelError::Invalid("negative delay".to_string()));
        }
        if ticks > 0 && self.system.is_urgent_concrete(state) {
            return Ok(None);
        }
        let mut next = state.clone();
        for c in &mut next.clocks {
            *c += ticks;
        }
        // Invariants are convex, so holding at the end point implies holding
        // throughout the delay (they hold at the start by assumption).
        if self.invariants_hold(&next)? {
            Ok(Some(next))
        } else {
            Ok(None)
        }
    }

    fn edge_enabled(
        &self,
        state: &ConcreteState,
        aut_idx: usize,
        edge_id: EdgeId,
    ) -> Result<bool, ModelError> {
        let aut = &self.system.automata()[aut_idx];
        let edge = aut.edge(edge_id);
        if edge.source != state.locations[aut_idx] {
            return Ok(false);
        }
        if !edge.guard.data_holds(self.system.vars(), &state.vars)? {
            return Ok(false);
        }
        for c in &edge.guard.clocks {
            if !c.holds_concrete(&state.clocks, self.scale, self.system.vars(), &state.vars)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn apply_edges(
        &self,
        state: &ConcreteState,
        edges: &[(usize, EdgeId)],
    ) -> Result<Option<ConcreteState>, ModelError> {
        let mut next = state.clone();
        for &(aut_idx, edge_id) in edges {
            let aut = &self.system.automata()[aut_idx];
            let edge = aut.edge(edge_id);
            next.locations[aut_idx] = edge.target;
            for r in &edge.resets {
                let v = r.value.eval(self.system.vars(), &state.vars)?;
                if v < 0 {
                    return Err(ModelError::NegativeClockReset(format!(
                        "clock {} := {v}",
                        self.system.clock(r.clock).name()
                    )));
                }
                next.clocks[r.clock.index()] = v * self.scale;
            }
            for u in &edge.updates {
                let value = u.value.eval(self.system.vars(), &next.vars)?;
                if self.system.vars().check_range(u.target, value).is_err() {
                    return Ok(None);
                }
                let offset = match &u.index {
                    None => self.system.vars().offset(u.target),
                    Some(idx) => {
                        let i = idx.eval(self.system.vars(), &next.vars)?;
                        let decl = self.system.vars().decl(u.target);
                        if i < 0 || i as usize >= decl.size() {
                            return Err(ModelError::Eval(
                                crate::error::EvalError::IndexOutOfBounds {
                                    name: decl.name().to_string(),
                                    index: i,
                                    size: decl.size(),
                                },
                            ));
                        }
                        self.system.vars().offset(u.target) + i as usize
                    }
                };
                next.vars[offset] = value;
            }
        }
        if self.invariants_hold(&next)? {
            Ok(Some(next))
        } else {
            Ok(None)
        }
    }

    /// Enumerates the edges of the *open* view enabled for a given sync label
    /// predicate.
    fn enabled_matching(
        &self,
        state: &ConcreteState,
        mut pred: impl FnMut(&Sync) -> bool,
    ) -> Result<Vec<EdgeRef>, ModelError> {
        let mut out = Vec::new();
        for (ai, aut) in self.system.automata().iter().enumerate() {
            for ei in aut.edges_from(state.locations[ai]) {
                if pred(&aut.edge(ei).sync) && self.edge_enabled(state, ai, ei)? {
                    out.push(EdgeRef {
                        automaton: AutomatonId::from_index(ai),
                        edge: ei,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Fires a single (open-view) edge.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn fire_edge(
        &self,
        state: &ConcreteState,
        edge: EdgeRef,
    ) -> Result<Option<ConcreteState>, ModelError> {
        if !self.edge_enabled(state, edge.automaton.index(), edge.edge)? {
            return Ok(None);
        }
        self.apply_edges(state, &[(edge.automaton.index(), edge.edge)])
    }

    /// Open view: the state after the plant receives input `channel?`, or
    /// `None` if no such edge is enabled (the input is refused).
    ///
    /// If several edges are enabled the first declared one is taken; use
    /// [`Interpreter::edges_for_input`] to detect nondeterminism explicitly.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn after_input(
        &self,
        state: &ConcreteState,
        channel: ChannelId,
    ) -> Result<Option<ConcreteState>, ModelError> {
        match self.edges_for_input(state, channel)?.first() {
            None => Ok(None),
            Some(e) => self.apply_edges(state, &[(e.automaton.index(), e.edge)]),
        }
    }

    /// Open view: the state after the plant emits output `channel!`, or `None`
    /// if the model cannot produce that output now.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn after_output(
        &self,
        state: &ConcreteState,
        channel: ChannelId,
    ) -> Result<Option<ConcreteState>, ModelError> {
        match self.edges_for_output(state, channel)?.first() {
            None => Ok(None),
            Some(e) => self.apply_edges(state, &[(e.automaton.index(), e.edge)]),
        }
    }

    /// Fires the first enabled internal (`tau`) edge, in (automaton, edge)
    /// declaration order, or returns `None` when no internal move is
    /// possible.
    ///
    /// This is the deterministic *forced-progression* rule shared by the
    /// test executor, the conformance monitor and the simulated
    /// implementation: when time is blocked and no synchronization is due,
    /// all three advance through the same silent move, which keeps their
    /// tracked states in lockstep on a common model.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn fire_first_internal(
        &self,
        state: &ConcreteState,
    ) -> Result<Option<ConcreteState>, ModelError> {
        for e in self.enabled_matching(state, |s| *s == Sync::Tau)? {
            if let Some(next) = self.fire_edge(state, e)? {
                return Ok(Some(next));
            }
        }
        Ok(None)
    }

    /// Open view: enabled edges receiving `channel?`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn edges_for_input(
        &self,
        state: &ConcreteState,
        channel: ChannelId,
    ) -> Result<Vec<EdgeRef>, ModelError> {
        self.enabled_matching(state, |s| *s == Sync::Input(channel))
    }

    /// Open view: enabled edges emitting `channel!`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn edges_for_output(
        &self,
        state: &ConcreteState,
        channel: ChannelId,
    ) -> Result<Vec<EdgeRef>, ModelError> {
        self.enabled_matching(state, |s| *s == Sync::Output(channel))
    }

    /// Open view: the set of output channels the plant could emit right now.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enabled_outputs(&self, state: &ConcreteState) -> Result<Vec<ChannelId>, ModelError> {
        let mut out = Vec::new();
        for (idx, ch) in self.system.channels().iter().enumerate() {
            if ch.kind() == ChannelKind::Output {
                let id = ChannelId::from_index(idx);
                if !self.edges_for_output(state, id)?.is_empty() {
                    out.push(id);
                }
            }
        }
        Ok(out)
    }

    /// Open view: the set of input channels the plant would accept right now
    /// (with a satisfied guard).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enabled_inputs(&self, state: &ConcreteState) -> Result<Vec<ChannelId>, ModelError> {
        let mut out = Vec::new();
        for (idx, ch) in self.system.channels().iter().enumerate() {
            if ch.kind() == ChannelKind::Input {
                let id = ChannelId::from_index(idx);
                if !self.edges_for_input(state, id)?.is_empty() {
                    out.push(id);
                }
            }
        }
        Ok(out)
    }

    /// Enabled internal (`tau`) edges.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enabled_internal(&self, state: &ConcreteState) -> Result<Vec<EdgeRef>, ModelError> {
        self.enabled_matching(state, |s| *s == Sync::Tau)
    }

    /// Closed view: fires a binary synchronization on `channel` between an
    /// enabled output edge and an enabled input edge of two distinct automata.
    ///
    /// Returns `None` if no such pair is enabled.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn fire_sync(
        &self,
        state: &ConcreteState,
        channel: ChannelId,
    ) -> Result<Option<ConcreteState>, ModelError> {
        let outputs = self.edges_for_output(state, channel)?;
        let inputs = self.edges_for_input(state, channel)?;
        for o in &outputs {
            for i in &inputs {
                if o.automaton == i.automaton {
                    continue;
                }
                if let Some(next) = self.apply_edges(
                    state,
                    &[(o.automaton.index(), o.edge), (i.automaton.index(), i.edge)],
                )? {
                    return Ok(Some(next));
                }
            }
        }
        Ok(None)
    }

    /// Closed view: the channels on which a binary synchronization is
    /// currently possible.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enabled_syncs(&self, state: &ConcreteState) -> Result<Vec<ChannelId>, ModelError> {
        let mut out = Vec::new();
        for idx in 0..self.system.channels().len() {
            let id = ChannelId::from_index(idx);
            let outputs = self.edges_for_output(state, id)?;
            if outputs.is_empty() {
                continue;
            }
            let inputs = self.edges_for_input(state, id)?;
            if inputs
                .iter()
                .any(|i| outputs.iter().any(|o| o.automaton != i.automaton))
            {
                out.push(id);
            }
        }
        Ok(out)
    }
}

impl System {
    /// Concrete-state counterpart of [`System::is_urgent`].
    #[must_use]
    pub fn is_urgent_concrete(&self, state: &ConcreteState) -> bool {
        self.automata()
            .iter()
            .enumerate()
            .any(|(i, aut)| aut.location(state.locations[i]).urgent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ClockConstraint;
    use crate::builder::{AutomatonBuilder, EdgeBuilder, SystemBuilder};
    use crate::expr::{CmpOp, Expr};

    /// Plant with a bounded response: after `req?` it must emit `resp!` within
    /// [1, 3] time units; a counter tracks the number of responses.
    fn responder() -> System {
        let mut b = SystemBuilder::new("responder");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let count = b.int_var("count", 0, 10, 0).unwrap();
        let mut a = AutomatonBuilder::new("Plant");
        let idle = a.location("Idle").unwrap();
        let busy = a.location("Busy").unwrap();
        a.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        a.add_edge(
            EdgeBuilder::new(busy, idle)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1))
                .set(count, Expr::var(count) + Expr::constant(1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_state_and_delay_bounds() {
        let sys = responder();
        let interp = Interpreter::new(&sys, 4).unwrap();
        let s0 = interp.initial_state().unwrap();
        assert_eq!(s0.clocks, vec![0]);
        // Idle has no invariant: unbounded delay.
        assert_eq!(interp.max_delay(&s0).unwrap(), None);
        let req = sys.channel_by_name("req").unwrap();
        let s1 = interp.after_input(&s0, req).unwrap().unwrap();
        // Busy invariant x <= 3 at scale 4: at most 12 ticks.
        assert_eq!(interp.max_delay(&s1).unwrap(), Some(12));
        assert!(interp.delayed(&s1, 12).unwrap().is_some());
        assert!(interp.delayed(&s1, 13).unwrap().is_none());
    }

    #[test]
    fn outputs_respect_guards_and_update_variables() {
        let sys = responder();
        let interp = Interpreter::new(&sys, 4).unwrap();
        let req = sys.channel_by_name("req").unwrap();
        let resp = sys.channel_by_name("resp").unwrap();
        let s0 = interp.initial_state().unwrap();
        let s1 = interp.after_input(&s0, req).unwrap().unwrap();
        // Output not yet enabled (guard x >= 1).
        assert!(interp.enabled_outputs(&s1).unwrap().is_empty());
        assert!(interp.after_output(&s1, resp).unwrap().is_none());
        let s2 = interp.delayed(&s1, 4).unwrap().unwrap();
        assert_eq!(interp.enabled_outputs(&s2).unwrap(), vec![resp]);
        let s3 = interp.after_output(&s2, resp).unwrap().unwrap();
        assert_eq!(s3.vars, vec![1]);
        // Input refused while busy.
        assert!(interp.after_input(&s2, req).unwrap().is_none());
        assert_eq!(interp.enabled_inputs(&s3).unwrap(), vec![req]);
    }

    #[test]
    fn negative_delay_and_zero_scale_rejected() {
        let sys = responder();
        assert!(Interpreter::new(&sys, 0).is_err());
        let interp = Interpreter::new(&sys, 2).unwrap();
        let s0 = interp.initial_state().unwrap();
        assert!(interp.delayed(&s0, -1).is_err());
    }

    #[test]
    fn closed_view_synchronizes_two_automata() {
        // Plant and a user that immediately requests and waits for responses.
        let mut b = SystemBuilder::new("closed");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let busy = plant.location("Busy").unwrap();
        plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 2)]);
        plant.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        plant.add_edge(EdgeBuilder::new(busy, idle).output(resp));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u0 = user.location("U0").unwrap();
        let u1 = user.location("U1").unwrap();
        user.add_edge(EdgeBuilder::new(u0, u1).output(req));
        user.add_edge(EdgeBuilder::new(u1, u0).input(resp));
        b.add_automaton(user.build().unwrap()).unwrap();
        let sys = b.build().unwrap();

        let interp = Interpreter::new(&sys, 2).unwrap();
        let s0 = interp.initial_state().unwrap();
        assert_eq!(interp.enabled_syncs(&s0).unwrap(), vec![req]);
        let s1 = interp.fire_sync(&s0, req).unwrap().unwrap();
        assert_eq!(interp.enabled_syncs(&s1).unwrap(), vec![resp]);
        assert!(interp.fire_sync(&s1, req).unwrap().is_none());
        let s2 = interp.fire_sync(&s1, resp).unwrap().unwrap();
        assert_eq!(s2.locations, s0.locations);
    }

    #[test]
    fn urgent_location_blocks_time() {
        let mut b = SystemBuilder::new("urgent");
        let _x = b.clock("x").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.set_urgent(l0);
        b.add_automaton(a.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let interp = Interpreter::new(&sys, 2).unwrap();
        let s0 = interp.initial_state().unwrap();
        assert_eq!(interp.max_delay(&s0).unwrap(), Some(0));
        assert!(interp.delayed(&s0, 1).unwrap().is_none());
        assert!(interp.delayed(&s0, 0).unwrap().is_some());
    }

    #[test]
    fn display_shows_locations_clocks_and_vars() {
        let sys = responder();
        let interp = Interpreter::new(&sys, 4).unwrap();
        let s0 = interp.initial_state().unwrap();
        let text = format!("{}", s0.display(&interp));
        assert!(text.contains("Plant.Idle"), "{text}");
        assert!(text.contains("x=0"), "{text}");
        assert!(text.contains("count=0"), "{text}");
    }

    #[test]
    fn blocked_update_yields_none() {
        // Counter bounded at 0: the resp update immediately overflows.
        let mut b = SystemBuilder::new("overflow");
        let x = b.clock("x").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let count = b.int_var("count", 0, 0, 0).unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.add_edge(
            EdgeBuilder::new(l0, l0)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 0))
                .set(count, Expr::var(count) + Expr::constant(1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let interp = Interpreter::new(&sys, 2).unwrap();
        let s0 = interp.initial_state().unwrap();
        assert!(interp.after_output(&s0, resp).unwrap().is_none());
    }
}
