//! Typed identifiers for the entities of a system model.
//!
//! Every entity (clock, channel, variable, automaton, location, edge) is
//! referred to by a small newtype wrapping its index, so that the different
//! kinds of references cannot be mixed up (`C-NEWTYPE`).

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Raw index of this identifier within its declaring collection.
            #[inline]
            #[must_use]
            pub fn index(self) -> usize {
                self.0
            }

            /// Creates an identifier from a raw index.
            ///
            /// Intended for deserialization and test helpers; passing an index
            /// that does not refer to an existing entity results in panics or
            /// `ModelError::InvalidReference` later on.
            #[inline]
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(index)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a clock declared on a [`crate::System`].
    ///
    /// Clock `ClockId(i)` corresponds to DBM index `i + 1` (index 0 is the
    /// reference clock).
    ClockId
);
id_type!(
    /// Identifier of a synchronization channel declared on a [`crate::System`].
    ChannelId
);
id_type!(
    /// Identifier of a bounded integer variable (or array) declared on a
    /// [`crate::System`].
    VarId
);
id_type!(
    /// Identifier of an automaton within a [`crate::System`].
    AutomatonId
);
id_type!(
    /// Identifier of a location within an automaton.
    LocationId
);
id_type!(
    /// Identifier of an edge within an automaton.
    EdgeId
);

impl ClockId {
    /// DBM matrix index of this clock (reference clock is 0).
    #[inline]
    #[must_use]
    pub fn dbm_index(self) -> usize {
        self.0 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_dbm_index_is_shifted() {
        assert_eq!(ClockId::from_index(0).dbm_index(), 1);
        assert_eq!(ClockId::from_index(3).dbm_index(), 4);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(VarId::from_index(1) < VarId::from_index(2));
        assert_eq!(LocationId::from_index(5).index(), 5);
        assert_eq!(format!("{}", ChannelId::from_index(2)), "ChannelId#2");
    }
}
