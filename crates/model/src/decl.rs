//! Declarations of bounded integer variables, clocks and channels.

use crate::error::ModelError;
use crate::ids::{ChannelId, ClockId, VarId};

/// Declaration of a bounded integer variable or array.
///
/// Arrays are flattened into the variable store; `size == 1` denotes a
/// scalar.  Every element shares the same `[lower, upper]` range and initial
/// value.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarDecl {
    name: String,
    size: usize,
    lower: i64,
    upper: i64,
    initial: i64,
    offset: usize,
}

impl VarDecl {
    /// Variable (or array) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements (`1` for scalars).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Inclusive lower bound of every element.
    #[must_use]
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Inclusive upper bound of every element.
    #[must_use]
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Initial value of every element.
    #[must_use]
    pub fn initial(&self) -> i64 {
        self.initial
    }

    /// Offset of the first element in the flattened variable store.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Returns `true` if this declaration is an array.
    #[must_use]
    pub fn is_array(&self) -> bool {
        self.size > 1
    }
}

/// The table of discrete variables declared by a system.
///
/// The table owns the declarations and assigns offsets into the flattened
/// variable store used by [`crate::DiscreteState`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarTable {
    decls: Vec<VarDecl>,
    total: usize,
}

impl VarTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Declares a variable or array.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is already taken, and
    /// [`ModelError::Invalid`] for empty arrays, inverted ranges or initial
    /// values outside the range.
    pub fn declare(
        &mut self,
        name: &str,
        size: usize,
        lower: i64,
        upper: i64,
        initial: i64,
    ) -> Result<VarId, ModelError> {
        if self.decls.iter().any(|d| d.name == name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        if size == 0 {
            return Err(ModelError::Invalid(format!("array `{name}` has size 0")));
        }
        if lower > upper {
            return Err(ModelError::Invalid(format!(
                "variable `{name}` has empty range [{lower}, {upper}]"
            )));
        }
        if initial < lower || initial > upper {
            return Err(ModelError::Invalid(format!(
                "initial value {initial} of `{name}` outside [{lower}, {upper}]"
            )));
        }
        let id = VarId(self.decls.len());
        self.decls.push(VarDecl {
            name: name.to_string(),
            size,
            lower,
            upper,
            initial,
            offset: self.total,
        });
        self.total += size;
        Ok(id)
    }

    /// Looks a variable up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.decls.iter().position(|d| d.name == name).map(VarId)
    }

    /// The declaration behind an identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this table.
    #[must_use]
    pub fn decl(&self, id: VarId) -> &VarDecl {
        &self.decls[id.0]
    }

    /// Offset of a variable's first element in the flattened store.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this table.
    #[must_use]
    pub fn offset(&self, id: VarId) -> usize {
        self.decls[id.0].offset
    }

    /// Number of declarations (arrays count once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Returns `true` if no variable has been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Total number of flattened store slots.
    #[must_use]
    pub fn store_size(&self) -> usize {
        self.total
    }

    /// Iterates over the declarations in declaration order.
    pub fn iter(&self) -> std::slice::Iter<'_, VarDecl> {
        self.decls.iter()
    }

    /// Builds the initial flattened variable store.
    #[must_use]
    pub fn initial_store(&self) -> Vec<i64> {
        let mut store = vec![0; self.total];
        for d in &self.decls {
            for slot in store.iter_mut().skip(d.offset).take(d.size) {
                *slot = d.initial;
            }
        }
        store
    }

    /// Checks a value against the declared range of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::VariableOutOfRange`] if outside the range.
    pub fn check_range(&self, id: VarId, value: i64) -> Result<(), ModelError> {
        let d = self.decl(id);
        if value < d.lower || value > d.upper {
            Err(ModelError::VariableOutOfRange {
                name: d.name.clone(),
                value,
            })
        } else {
            Ok(())
        }
    }

    /// Resolves a flattened store offset back to `(variable, element index)`.
    ///
    /// Useful for diagnostics; returns `None` for offsets beyond the store.
    #[must_use]
    pub fn resolve_offset(&self, offset: usize) -> Option<(VarId, usize)> {
        for (i, d) in self.decls.iter().enumerate() {
            if offset >= d.offset && offset < d.offset + d.size {
                return Some((VarId(i), offset - d.offset));
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a VarTable {
    type Item = &'a VarDecl;
    type IntoIter = std::slice::Iter<'a, VarDecl>;

    fn into_iter(self) -> Self::IntoIter {
        self.decls.iter()
    }
}

/// Declaration of a clock.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockDecl {
    name: String,
    /// Minimum extrapolation constant: [`crate::System::max_bounds`] never
    /// reports less than this for the clock, even when no guard or invariant
    /// mentions it.  Needed for auxiliary clocks (the `#t` tick clock of
    /// time-bounded objectives) whose relevant constant comes from the test
    /// purpose rather than the model.
    max_constant_floor: i32,
}

impl ClockDecl {
    pub(crate) fn new(name: &str) -> Self {
        ClockDecl {
            name: name.to_string(),
            max_constant_floor: 0,
        }
    }

    pub(crate) fn with_max_constant(name: &str, max_constant_floor: i32) -> Self {
        ClockDecl {
            name: name.to_string(),
            max_constant_floor,
        }
    }

    /// Clock name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum extrapolation constant contributed by the declaration itself
    /// (`0` for ordinary clocks).
    #[must_use]
    pub fn max_constant_floor(&self) -> i32 {
        self.max_constant_floor
    }
}

/// Whether an action/channel is controlled by the tester (input to the plant)
/// or by the plant itself (output).
///
/// In the TIOGA setting of the paper, inputs are exactly the controllable
/// actions and outputs exactly the uncontrollable ones (Definition 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChannelKind {
    /// Controllable: offered by the tester/environment (`touch?` on the plant).
    Input,
    /// Uncontrollable: produced by the plant (`bright!`, `dim!`, ...).
    Output,
    /// Internal (neither observable input nor output); controllability is
    /// taken from the edge that uses it.
    Internal,
}

/// Declaration of a synchronization channel.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Channel {
    name: String,
    kind: ChannelKind,
}

impl Channel {
    pub(crate) fn new(name: &str, kind: ChannelKind) -> Self {
        Channel {
            name: name.to_string(),
            kind,
        }
    }

    /// Channel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared kind (input / output / internal).
    #[must_use]
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// Returns `true` if synchronizations on this channel are controllable
    /// moves of the tester.
    #[must_use]
    pub fn is_controllable(&self) -> bool {
        matches!(self.kind, ChannelKind::Input)
    }
}

/// Direction of an observable action from the plant's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IoDir {
    /// The action enters the plant (tester stimulus).
    Input,
    /// The action leaves the plant (observed output).
    Output,
}

/// An observable action: a channel together with its direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Action {
    /// Channel carrying the action.
    pub channel: ChannelId,
    /// Direction w.r.t. the plant.
    pub dir: IoDir,
}

impl Action {
    /// Creates an input action (tester → plant).
    #[must_use]
    pub fn input(channel: ChannelId) -> Self {
        Action {
            channel,
            dir: IoDir::Input,
        }
    }

    /// Creates an output action (plant → tester).
    #[must_use]
    pub fn output(channel: ChannelId) -> Self {
        Action {
            channel,
            dir: IoDir::Output,
        }
    }

    /// Returns `true` for input actions.
    #[must_use]
    pub fn is_input(&self) -> bool {
        self.dir == IoDir::Input
    }
}

/// Reference to a clock used in constraints: either a real clock or the
/// implicit zero-valued reference clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ClockRef {
    /// The constant-zero reference clock.
    Zero,
    /// A declared clock.
    Clock(ClockId),
}

impl ClockRef {
    /// DBM index of the referenced clock.
    #[must_use]
    pub fn dbm_index(self) -> usize {
        match self {
            ClockRef::Zero => 0,
            ClockRef::Clock(c) => c.dbm_index(),
        }
    }
}

impl From<ClockId> for ClockRef {
    fn from(c: ClockId) -> Self {
        ClockRef::Clock(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut t = VarTable::new();
        let a = t.declare("a", 1, 0, 10, 3).unwrap();
        let arr = t.declare("arr", 4, 0, 1, 0).unwrap();
        assert_eq!(t.lookup("a"), Some(a));
        assert_eq!(t.lookup("arr"), Some(arr));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.store_size(), 5);
        assert_eq!(t.offset(arr), 1);
        assert_eq!(t.initial_store(), vec![3, 0, 0, 0, 0]);
        assert!(t.decl(arr).is_array());
        assert!(!t.decl(a).is_array());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_and_invalid_declarations_rejected() {
        let mut t = VarTable::new();
        t.declare("a", 1, 0, 10, 0).unwrap();
        assert!(matches!(
            t.declare("a", 1, 0, 10, 0),
            Err(ModelError::DuplicateName(_))
        ));
        assert!(matches!(
            t.declare("b", 0, 0, 10, 0),
            Err(ModelError::Invalid(_))
        ));
        assert!(matches!(
            t.declare("c", 1, 5, 3, 4),
            Err(ModelError::Invalid(_))
        ));
        assert!(matches!(
            t.declare("d", 1, 0, 3, 7),
            Err(ModelError::Invalid(_))
        ));
    }

    #[test]
    fn range_checks() {
        let mut t = VarTable::new();
        let a = t.declare("a", 1, -2, 2, 0).unwrap();
        assert!(t.check_range(a, 2).is_ok());
        assert!(t.check_range(a, -2).is_ok());
        assert!(matches!(
            t.check_range(a, 3),
            Err(ModelError::VariableOutOfRange { .. })
        ));
    }

    #[test]
    fn resolve_offsets() {
        let mut t = VarTable::new();
        let a = t.declare("a", 1, 0, 1, 0).unwrap();
        let arr = t.declare("arr", 3, 0, 1, 0).unwrap();
        assert_eq!(t.resolve_offset(0), Some((a, 0)));
        assert_eq!(t.resolve_offset(2), Some((arr, 1)));
        assert_eq!(t.resolve_offset(9), None);
    }

    #[test]
    fn channel_controllability() {
        let input = Channel::new("touch", ChannelKind::Input);
        let output = Channel::new("bright", ChannelKind::Output);
        assert!(input.is_controllable());
        assert!(!output.is_controllable());
        assert_eq!(input.kind(), ChannelKind::Input);
        assert_eq!(output.name(), "bright");
    }

    #[test]
    fn clock_refs_map_to_dbm_indices() {
        assert_eq!(ClockRef::Zero.dbm_index(), 0);
        assert_eq!(ClockRef::from(ClockId::from_index(2)).dbm_index(), 3);
    }
}
