//! A system: a network of timed (I/O game) automata sharing clocks, discrete
//! variables and synchronization channels.

use crate::automaton::Automaton;
use crate::decl::{Channel, ClockDecl, VarTable};
use crate::error::ModelError;
use crate::ids::{AutomatonId, ChannelId, ClockId, LocationId};

/// A complete model: global declarations plus a vector of automata composed
/// in parallel.
///
/// Systems are constructed through [`crate::SystemBuilder`]; the struct itself
/// is immutable, so analyses can borrow it freely.
///
/// # Examples
///
/// ```
/// use tiga_model::{SystemBuilder, AutomatonBuilder, EdgeBuilder};
///
/// # fn main() -> Result<(), tiga_model::ModelError> {
/// let mut builder = SystemBuilder::new("demo");
/// let x = builder.clock("x")?;
/// let press = builder.input_channel("press")?;
///
/// let mut machine = AutomatonBuilder::new("Machine");
/// let idle = machine.location("Idle")?;
/// let busy = machine.location("Busy")?;
/// machine.set_initial(idle);
/// machine.add_edge(EdgeBuilder::new(idle, busy).input(press).reset(x));
/// builder.add_automaton(machine.build()?)?;
///
/// let system = builder.build()?;
/// assert_eq!(system.dim(), 2);
/// assert_eq!(system.automata().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct System {
    pub(crate) name: String,
    pub(crate) clocks: Vec<ClockDecl>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) vars: VarTable,
    pub(crate) automata: Vec<Automaton>,
}

impl System {
    /// System name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared clocks, in declaration order.
    #[must_use]
    pub fn clocks(&self) -> &[ClockDecl] {
        &self.clocks
    }

    /// Declared channels, in declaration order.
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The discrete-variable table.
    #[must_use]
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// The automata composed in parallel.
    #[must_use]
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// An automaton by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this system.
    #[must_use]
    pub fn automaton(&self, id: AutomatonId) -> &Automaton {
        &self.automata[id.index()]
    }

    /// A channel by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this system.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// A clock declaration by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this system.
    #[must_use]
    pub fn clock(&self, id: ClockId) -> &ClockDecl {
        &self.clocks[id.index()]
    }

    /// DBM dimension: number of clocks plus one for the reference clock.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.clocks.len() + 1
    }

    /// Clock names in DBM order (excluding the reference clock), handy for
    /// zone pretty-printing.
    #[must_use]
    pub fn clock_names(&self) -> Vec<String> {
        self.clocks.iter().map(|c| c.name().to_string()).collect()
    }

    /// Looks up an automaton by name.
    #[must_use]
    pub fn automaton_by_name(&self, name: &str) -> Option<AutomatonId> {
        self.automata
            .iter()
            .position(|a| a.name() == name)
            .map(AutomatonId::from_index)
    }

    /// Looks up a channel by name.
    #[must_use]
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name() == name)
            .map(ChannelId::from_index)
    }

    /// Looks up a clock by name.
    #[must_use]
    pub fn clock_by_name(&self, name: &str) -> Option<ClockId> {
        self.clocks
            .iter()
            .position(|c| c.name() == name)
            .map(ClockId::from_index)
    }

    /// Looks up a location by `"Automaton.Location"` qualified name.
    #[must_use]
    pub fn location_by_qualified_name(&self, qualified: &str) -> Option<(AutomatonId, LocationId)> {
        let (aut_name, loc_name) = qualified.split_once('.')?;
        let aut = self.automaton_by_name(aut_name)?;
        let loc = self.automaton(aut).location_by_name(loc_name)?;
        Some((aut, loc))
    }

    /// Per-clock maximal constants used for extrapolation during forward
    /// exploration (index 0 is the reference clock and stays 0).
    ///
    /// Constants are collected from every guard and invariant; bounds that
    /// depend on variables are over-approximated from the variable ranges.
    #[must_use]
    pub fn max_bounds(&self) -> Vec<i32> {
        let mut max = vec![0i64; self.dim()];
        let mut bump = |clock: ClockId, value: i64| {
            let slot = &mut max[clock.dbm_index()];
            if value > *slot {
                *slot = value;
            }
        };
        for aut in &self.automata {
            for loc in aut.locations() {
                for c in &loc.invariant {
                    let m = c.max_constant(&self.vars);
                    bump(c.left, m);
                    if let Some(r) = c.minus {
                        bump(r, m);
                    }
                }
            }
            for edge in aut.edges() {
                for c in &edge.guard.clocks {
                    let m = c.max_constant(&self.vars);
                    bump(c.left, m);
                    if let Some(r) = c.minus {
                        bump(r, m);
                    }
                }
                for r in &edge.resets {
                    if let Some(v) = r.value.as_constant() {
                        bump(r.clock, v.abs());
                    }
                }
            }
        }
        for (i, c) in self.clocks.iter().enumerate() {
            let slot = &mut max[i + 1];
            let floor = i64::from(c.max_constant_floor());
            if floor > *slot {
                *slot = floor;
            }
        }
        max.into_iter()
            .map(|m| i32::try_from(m).unwrap_or(i32::MAX / 8))
            .collect()
    }

    /// Returns a copy of the system extended with one fresh, never-reset
    /// clock whose extrapolation constant is at least `max_constant`.
    ///
    /// No location, edge or invariant mentions the new clock, so the
    /// augmented system has exactly the same behaviour — the clock merely
    /// measures global elapsed time.  This is how time-bounded objectives
    /// (`control: A<><=T φ`) are lowered: the solver runs the ordinary
    /// unbounded fixpoint on the augmented system and intersects the goal
    /// (or bad-state) seeds with `new_clock <= T`.
    ///
    /// Existing [`crate::ClockId`]s remain valid in the augmented system,
    /// and zones over it have [`System::dim`]` + 1` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a clock named `name` already
    /// exists, and [`ModelError::Invalid`] if `max_constant` is negative or
    /// exceeds [`tiga_dbm::MAX_CONSTANT`].
    pub fn with_extra_clock(
        &self,
        name: &str,
        max_constant: i32,
    ) -> Result<(System, ClockId), ModelError> {
        if self.clocks.iter().any(|c| c.name() == name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        if !(0..=tiga_dbm::MAX_CONSTANT).contains(&max_constant) {
            return Err(ModelError::Invalid(format!(
                "extrapolation constant {max_constant} for clock `{name}` outside 0..={}",
                tiga_dbm::MAX_CONSTANT
            )));
        }
        let mut sys = self.clone();
        let id = ClockId::from_index(sys.clocks.len());
        sys.clocks
            .push(ClockDecl::with_max_constant(name, max_constant));
        Ok((sys, id))
    }

    /// Total number of locations across all automata (a rough size measure
    /// reported by solver statistics).
    #[must_use]
    pub fn location_count(&self) -> usize {
        self.automata.iter().map(|a| a.locations().len()).sum()
    }

    /// Total number of edges across all automata.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.automata.iter().map(|a| a.edges().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ClockConstraint;
    use crate::builder::{AutomatonBuilder, EdgeBuilder, SystemBuilder};
    use crate::expr::CmpOp;

    fn tiny_system() -> System {
        let mut b = SystemBuilder::new("tiny");
        let x = b.clock("x").unwrap();
        let y = b.clock("y").unwrap();
        let go = b.input_channel("go").unwrap();
        let done = b.output_channel("done").unwrap();
        let _n = b.int_var("n", 0, 3, 0).unwrap();

        let mut a = AutomatonBuilder::new("Proc");
        let idle = a.location("Idle").unwrap();
        let work = a.location("Work").unwrap();
        a.set_initial(idle);
        a.set_invariant(work, vec![ClockConstraint::new(x, CmpOp::Le, 5)]);
        a.add_edge(
            EdgeBuilder::new(idle, work)
                .input(go)
                .guard_clock(ClockConstraint::new(y, CmpOp::Ge, 2))
                .reset(x),
        );
        a.add_edge(EdgeBuilder::new(work, idle).output(done));
        let aut = a.build().unwrap();

        let mut env = AutomatonBuilder::new("Env");
        let e0 = env.location("E0").unwrap();
        env.set_initial(e0);
        env.add_edge(EdgeBuilder::new(e0, e0).output(go));
        env.add_edge(EdgeBuilder::new(e0, e0).input(done));
        let envaut = env.build().unwrap();

        b.add_automaton(aut).unwrap();
        b.add_automaton(envaut).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookups_by_name() {
        let sys = tiny_system();
        assert_eq!(sys.dim(), 3);
        assert!(sys.automaton_by_name("Proc").is_some());
        assert!(sys.automaton_by_name("Nope").is_none());
        assert!(sys.channel_by_name("go").is_some());
        assert!(sys.clock_by_name("y").is_some());
        let (aut, loc) = sys.location_by_qualified_name("Proc.Work").unwrap();
        assert_eq!(sys.automaton(aut).location(loc).name, "Work");
        assert!(sys.location_by_qualified_name("Proc.Nowhere").is_none());
        assert!(sys.location_by_qualified_name("NoDot").is_none());
        assert_eq!(sys.clock_names(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn max_bounds_cover_guards_and_invariants() {
        let sys = tiny_system();
        let bounds = sys.max_bounds();
        // Reference clock.
        assert_eq!(bounds[0], 0);
        // x bounded by the invariant x <= 5.
        assert_eq!(bounds[sys.clock_by_name("x").unwrap().dbm_index()], 5);
        // y bounded by the guard y >= 2.
        assert_eq!(bounds[sys.clock_by_name("y").unwrap().dbm_index()], 2);
    }

    #[test]
    fn with_extra_clock_extends_dim_and_extrapolation() {
        let sys = tiny_system();
        let (aug, tick) = sys.with_extra_clock("#t", 42).unwrap();
        assert_eq!(aug.dim(), sys.dim() + 1);
        assert_eq!(aug.clock(tick).name(), "#t");
        // Existing clock ids keep their meaning.
        assert_eq!(aug.clock_by_name("x"), sys.clock_by_name("x"));
        // The extrapolation bound covers the new clock even though no
        // constraint mentions it.
        let bounds = aug.max_bounds();
        assert_eq!(bounds[tick.dbm_index()], 42);
        // Old clocks are unaffected.
        assert_eq!(bounds[aug.clock_by_name("x").unwrap().dbm_index()], 5);
        // Behaviour-level structure is untouched.
        assert_eq!(aug.edge_count(), sys.edge_count());

        assert!(matches!(
            aug.with_extra_clock("#t", 1),
            Err(ModelError::DuplicateName(_))
        ));
        assert!(matches!(
            sys.with_extra_clock("#u", -1),
            Err(ModelError::Invalid(_))
        ));
        assert!(matches!(
            sys.with_extra_clock("#u", i32::MAX),
            Err(ModelError::Invalid(_))
        ));
    }

    #[test]
    fn size_measures() {
        let sys = tiny_system();
        assert_eq!(sys.location_count(), 3);
        assert_eq!(sys.edge_count(), 4);
        assert_eq!(sys.name(), "tiny");
        assert_eq!(sys.channels().len(), 2);
        assert_eq!(sys.vars().len(), 1);
    }
}
