//! Fluent builders for systems, automata and edges.
//!
//! The builders are the public way of constructing models programmatically
//! (the reproduction does not parse UPPAAL XML).  They perform the structural
//! validation that keeps later analyses panic-free: unique names, resolved
//! identifiers, declared initial locations.

use crate::automaton::{
    Assignment, Automaton, ClockConstraint, ClockReset, Edge, Guard, Location, Sync,
};
use crate::decl::{Channel, ChannelKind, ClockDecl, VarTable};
use crate::error::ModelError;
use crate::expr::Expr;
use crate::ids::{AutomatonId, ChannelId, ClockId, LocationId, VarId};
use crate::system::System;

/// Builder for a [`System`].
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Default)]
pub struct SystemBuilder {
    name: String,
    clocks: Vec<ClockDecl>,
    channels: Vec<Channel>,
    vars: VarTable,
    automata: Vec<Automaton>,
}

impl SystemBuilder {
    /// Starts building a system with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        SystemBuilder {
            name: name.to_string(),
            ..SystemBuilder::default()
        }
    }

    /// Declares a clock.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a clock with this name exists.
    pub fn clock(&mut self, name: &str) -> Result<ClockId, ModelError> {
        if self.clocks.iter().any(|c| c.name() == name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        self.clocks.push(ClockDecl::new(name));
        Ok(ClockId::from_index(self.clocks.len() - 1))
    }

    fn channel(&mut self, name: &str, kind: ChannelKind) -> Result<ChannelId, ModelError> {
        if self.channels.iter().any(|c| c.name() == name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        self.channels.push(Channel::new(name, kind));
        Ok(ChannelId::from_index(self.channels.len() - 1))
    }

    /// Declares an input channel (controllable: offered by the tester).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] on name clashes.
    pub fn input_channel(&mut self, name: &str) -> Result<ChannelId, ModelError> {
        self.channel(name, ChannelKind::Input)
    }

    /// Declares an output channel (uncontrollable: produced by the plant).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] on name clashes.
    pub fn output_channel(&mut self, name: &str) -> Result<ChannelId, ModelError> {
        self.channel(name, ChannelKind::Output)
    }

    /// Declares an internal channel (controllability taken from the edges).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] on name clashes.
    pub fn internal_channel(&mut self, name: &str) -> Result<ChannelId, ModelError> {
        self.channel(name, ChannelKind::Internal)
    }

    /// Declares a bounded integer variable.
    ///
    /// # Errors
    ///
    /// See [`VarTable::declare`].
    pub fn int_var(
        &mut self,
        name: &str,
        lower: i64,
        upper: i64,
        initial: i64,
    ) -> Result<VarId, ModelError> {
        self.vars.declare(name, 1, lower, upper, initial)
    }

    /// Declares a bounded integer array with `size` elements.
    ///
    /// # Errors
    ///
    /// See [`VarTable::declare`].
    pub fn int_array(
        &mut self,
        name: &str,
        size: usize,
        lower: i64,
        upper: i64,
        initial: i64,
    ) -> Result<VarId, ModelError> {
        self.vars.declare(name, size, lower, upper, initial)
    }

    /// Declares a named integer constant (a variable with a singleton range).
    ///
    /// # Errors
    ///
    /// See [`VarTable::declare`].
    pub fn constant(&mut self, name: &str, value: i64) -> Result<VarId, ModelError> {
        self.vars.declare(name, 1, value, value, value)
    }

    /// Adds a fully built automaton to the system.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if another automaton has the same
    /// name, or [`ModelError::InvalidReference`] if the automaton refers to
    /// clocks, channels or variables not declared on this builder.
    pub fn add_automaton(&mut self, automaton: Automaton) -> Result<AutomatonId, ModelError> {
        if self.automata.iter().any(|a| a.name() == automaton.name()) {
            return Err(ModelError::DuplicateName(automaton.name().to_string()));
        }
        self.validate_automaton(&automaton)?;
        self.automata.push(automaton);
        Ok(AutomatonId::from_index(self.automata.len() - 1))
    }

    fn validate_clock(&self, clock: ClockId, ctx: &str) -> Result<(), ModelError> {
        if clock.index() >= self.clocks.len() {
            return Err(ModelError::InvalidReference(format!("clock in {ctx}")));
        }
        Ok(())
    }

    fn validate_constraints(&self, cs: &[ClockConstraint], ctx: &str) -> Result<(), ModelError> {
        for c in cs {
            self.validate_clock(c.left, ctx)?;
            if let Some(r) = c.minus {
                self.validate_clock(r, ctx)?;
            }
        }
        Ok(())
    }

    fn validate_automaton(&self, automaton: &Automaton) -> Result<(), ModelError> {
        let n_locs = automaton.locations().len();
        for loc in automaton.locations() {
            self.validate_constraints(&loc.invariant, &format!("invariant of {}", loc.name))?;
        }
        for (idx, edge) in automaton.edges().iter().enumerate() {
            let ctx = format!("edge #{idx} of {}", automaton.name());
            if edge.source.index() >= n_locs || edge.target.index() >= n_locs {
                return Err(ModelError::InvalidReference(ctx));
            }
            if let Some(ch) = edge.sync.channel() {
                if ch.index() >= self.channels.len() {
                    return Err(ModelError::InvalidReference(format!("channel in {ctx}")));
                }
            }
            self.validate_constraints(&edge.guard.clocks, &ctx)?;
            for r in &edge.resets {
                self.validate_clock(r.clock, &ctx)?;
            }
            for u in &edge.updates {
                if u.target.index() >= self.vars.len() {
                    return Err(ModelError::InvalidReference(format!("variable in {ctx}")));
                }
            }
        }
        Ok(())
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the system has no automaton.
    pub fn build(self) -> Result<System, ModelError> {
        if self.automata.is_empty() {
            return Err(ModelError::Invalid("system has no automaton".to_string()));
        }
        Ok(System {
            name: self.name,
            clocks: self.clocks,
            channels: self.channels,
            vars: self.vars,
            automata: self.automata,
        })
    }

    /// Read access to the variable table while still building (useful for
    /// defining expressions that reference earlier declarations).
    #[must_use]
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }
}

/// Builder for a single [`Automaton`].
#[derive(Debug)]
pub struct AutomatonBuilder {
    name: String,
    locations: Vec<Location>,
    initial: Option<LocationId>,
    edges: Vec<Edge>,
}

impl AutomatonBuilder {
    /// Starts building an automaton with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        AutomatonBuilder {
            name: name.to_string(),
            locations: Vec::new(),
            initial: None,
            edges: Vec::new(),
        }
    }

    /// Declares a location.
    ///
    /// The first declared location becomes the initial location unless
    /// [`AutomatonBuilder::set_initial`] chooses another one.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] on name clashes within the
    /// automaton.
    pub fn location(&mut self, name: &str) -> Result<LocationId, ModelError> {
        if self.locations.iter().any(|l| l.name == name) {
            return Err(ModelError::DuplicateName(format!("{}.{}", self.name, name)));
        }
        self.locations.push(Location::new(name));
        let id = LocationId::from_index(self.locations.len() - 1);
        if self.initial.is_none() {
            self.initial = Some(id);
        }
        Ok(id)
    }

    /// Chooses the initial location.
    pub fn set_initial(&mut self, loc: LocationId) -> &mut Self {
        self.initial = Some(loc);
        self
    }

    /// Sets (replaces) the invariant of a location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not belong to this builder.
    pub fn set_invariant(&mut self, loc: LocationId, invariant: Vec<ClockConstraint>) -> &mut Self {
        self.locations[loc.index()].invariant = invariant;
        self
    }

    /// Adds one constraint to the invariant of a location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not belong to this builder.
    pub fn add_invariant(&mut self, loc: LocationId, constraint: ClockConstraint) -> &mut Self {
        self.locations[loc.index()].invariant.push(constraint);
        self
    }

    /// Marks a location as urgent (time cannot elapse there).
    ///
    /// # Panics
    ///
    /// Panics if the location does not belong to this builder.
    pub fn set_urgent(&mut self, loc: LocationId) -> &mut Self {
        self.locations[loc.index()].urgent = true;
        self
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, edge: impl Into<Edge>) -> &mut Self {
        self.edges.push(edge.into());
        self
    }

    /// Finalizes the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingInitialLocation`] for an automaton with no
    /// location, and [`ModelError::InvalidReference`] if an edge refers to a
    /// location that was not declared.
    pub fn build(self) -> Result<Automaton, ModelError> {
        let initial = self
            .initial
            .ok_or_else(|| ModelError::MissingInitialLocation(self.name.clone()))?;
        let n = self.locations.len();
        for edge in &self.edges {
            if edge.source.index() >= n || edge.target.index() >= n {
                return Err(ModelError::InvalidReference(format!(
                    "edge of automaton {}",
                    self.name
                )));
            }
        }
        Ok(Automaton {
            name: self.name,
            locations: self.locations,
            initial,
            edges: self.edges,
        })
    }
}

/// Builder for an [`Edge`].
///
/// The builder starts as an internal (`tau`) edge with a trivially true guard
/// and no resets or updates; the chainable methods refine it.
#[derive(Clone, Debug)]
pub struct EdgeBuilder {
    edge: Edge,
}

impl EdgeBuilder {
    /// Starts an edge from `source` to `target`.
    #[must_use]
    pub fn new(source: LocationId, target: LocationId) -> Self {
        EdgeBuilder {
            edge: Edge {
                source,
                target,
                sync: Sync::Tau,
                guard: Guard::always(),
                resets: Vec::new(),
                updates: Vec::new(),
                controllable: None,
            },
        }
    }

    /// Labels the edge with a receiving synchronization `channel?`.
    #[must_use]
    pub fn input(mut self, channel: ChannelId) -> Self {
        self.edge.sync = Sync::Input(channel);
        self
    }

    /// Labels the edge with an emitting synchronization `channel!`.
    #[must_use]
    pub fn output(mut self, channel: ChannelId) -> Self {
        self.edge.sync = Sync::Output(channel);
        self
    }

    /// Adds a clock constraint to the guard.
    #[must_use]
    pub fn guard_clock(mut self, constraint: ClockConstraint) -> Self {
        self.edge.guard.clocks.push(constraint);
        self
    }

    /// Conjoins a data guard over the discrete variables.
    #[must_use]
    pub fn when(mut self, condition: Expr) -> Self {
        self.edge.guard.data = Some(match self.edge.guard.data.take() {
            None => condition,
            Some(existing) => existing.and(condition),
        });
        self
    }

    /// Resets a clock to zero.
    #[must_use]
    pub fn reset(mut self, clock: ClockId) -> Self {
        self.edge.resets.push(ClockReset::to_zero(clock));
        self
    }

    /// Resets a clock to the value of an expression.
    #[must_use]
    pub fn reset_to(mut self, clock: ClockId, value: impl Into<Expr>) -> Self {
        self.edge.resets.push(ClockReset::to_value(clock, value));
        self
    }

    /// Assigns a scalar variable.
    #[must_use]
    pub fn set(mut self, var: VarId, value: impl Into<Expr>) -> Self {
        self.edge.updates.push(Assignment::set(var, value));
        self
    }

    /// Assigns an array element.
    #[must_use]
    pub fn set_element(
        mut self,
        var: VarId,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Self {
        self.edge
            .updates
            .push(Assignment::set_element(var, index, value));
        self
    }

    /// Overrides the controllability of a `tau` edge (sync edges inherit the
    /// channel's kind).
    #[must_use]
    pub fn controllable(mut self, controllable: bool) -> Self {
        self.edge.controllable = Some(controllable);
        self
    }

    /// Finishes the edge.
    #[must_use]
    pub fn build(self) -> Edge {
        self.edge
    }
}

impl From<EdgeBuilder> for Edge {
    fn from(b: EdgeBuilder) -> Edge {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn duplicate_declarations_rejected() {
        let mut b = SystemBuilder::new("s");
        b.clock("x").unwrap();
        assert!(matches!(b.clock("x"), Err(ModelError::DuplicateName(_))));
        b.input_channel("a").unwrap();
        assert!(matches!(
            b.output_channel("a"),
            Err(ModelError::DuplicateName(_))
        ));
        b.int_var("v", 0, 1, 0).unwrap();
        assert!(matches!(
            b.int_var("v", 0, 1, 0),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn automaton_requires_location() {
        let a = AutomatonBuilder::new("A");
        assert!(matches!(
            a.build(),
            Err(ModelError::MissingInitialLocation(_))
        ));
    }

    #[test]
    fn first_location_is_default_initial() {
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        let _l1 = a.location("L1").unwrap();
        let aut = a.build().unwrap();
        assert_eq!(aut.initial(), l0);
    }

    #[test]
    fn duplicate_location_rejected() {
        let mut a = AutomatonBuilder::new("A");
        a.location("L0").unwrap();
        assert!(matches!(
            a.location("L0"),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn edge_with_unknown_location_rejected() {
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.add_edge(EdgeBuilder::new(l0, LocationId::from_index(7)));
        assert!(matches!(a.build(), Err(ModelError::InvalidReference(_))));
    }

    #[test]
    fn system_validates_foreign_references() {
        let mut b = SystemBuilder::new("s");
        let _x = b.clock("x").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        // Guard refers to a clock index that does not exist in the system.
        a.add_edge(EdgeBuilder::new(l0, l0).guard_clock(ClockConstraint::new(
            ClockId::from_index(5),
            CmpOp::Ge,
            1,
        )));
        let aut = a.build().unwrap();
        assert!(matches!(
            b.add_automaton(aut),
            Err(ModelError::InvalidReference(_))
        ));
    }

    #[test]
    fn system_needs_an_automaton() {
        let b = SystemBuilder::new("empty");
        assert!(matches!(b.build(), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn duplicate_automaton_names_rejected() {
        let mut b = SystemBuilder::new("s");
        let mut a1 = AutomatonBuilder::new("A");
        a1.location("L").unwrap();
        let mut a2 = AutomatonBuilder::new("A");
        a2.location("L").unwrap();
        b.add_automaton(a1.build().unwrap()).unwrap();
        assert!(matches!(
            b.add_automaton(a2.build().unwrap()),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn edge_builder_accumulates_guard_and_effects() {
        let mut b = SystemBuilder::new("s");
        let x = b.clock("x").unwrap();
        let c = b.input_channel("c").unwrap();
        let v = b.int_var("v", 0, 5, 0).unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        let l1 = a.location("L1").unwrap();
        let edge: Edge = EdgeBuilder::new(l0, l1)
            .input(c)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2))
            .when(Expr::var(v).lt(Expr::constant(5)))
            .when(Expr::var(v).ge(Expr::constant(0)))
            .reset(x)
            .set(v, Expr::var(v) + Expr::constant(1))
            .into();
        assert_eq!(edge.sync, Sync::Input(c));
        assert_eq!(edge.guard.clocks.len(), 1);
        assert!(edge.guard.data.is_some());
        assert_eq!(edge.resets.len(), 1);
        assert_eq!(edge.updates.len(), 1);
        a.add_edge(EdgeBuilder::new(l0, l1));
        let aut = a.build().unwrap();
        b.add_automaton(aut).unwrap();
        assert!(b.build().is_ok());
    }
}
