//! Shared symbolic-exploration engine.
//!
//! Both the eager game-graph construction and the on-the-fly (OTFUR-style)
//! solver need the same primitives: hashing-based interning of discrete
//! states, enumeration of delay-closed symbolic successors, and predecessor
//! federations through joint edges.  [`Explorer`] packages them behind one
//! implementation so the two exploration strategies cannot drift apart.
//!
//! The explorer caches, per interned discrete state, the derived data every
//! client recomputed before this module existed: the invariant zone and the
//! urgency flag.  Successor zones are delay-closed within the target
//! invariant and extrapolated with the system's maximal constants, exactly as
//! [`System::delay_close`] prescribes.

use crate::error::ModelError;
use crate::symbolic::{DiscreteState, JointEdge};
use crate::system::System;
use std::collections::HashMap;
use tiga_dbm::{Dbm, Federation};

/// Dense index of an interned discrete state inside an [`Explorer`].
pub type StateIndex = usize;

/// An interned discrete state together with its cached derived data.
#[derive(Clone, Debug)]
pub struct ExploredState {
    /// The discrete state (locations and variable store).
    pub discrete: DiscreteState,
    /// Conjunction of the location invariants, as a zone.
    pub invariant: Dbm,
    /// Whether some current location is urgent (no delay allowed).
    pub urgent: bool,
}

/// One symbolic successor step returned by [`Explorer::successors`].
#[derive(Clone, Debug)]
pub struct SuccessorStep {
    /// The joint (composed) model edge taken.
    pub joint: JointEdge,
    /// Interned index of the target discrete state.
    pub target: StateIndex,
    /// Delay-closed, extrapolated successor zone (never empty).
    pub zone: Dbm,
    /// Whether the step is a controllable (tester) move.
    pub controllable: bool,
}

/// One symbolic successor step whose target has *not* been interned yet,
/// returned by [`Explorer::successor_candidates`].
///
/// The read-only candidate computation is the expensive part of forward
/// exploration (guard evaluation, successor zones, delay closure); keeping
/// it free of interning lets callers run it for many `(state, zone)` pairs
/// on worker threads and intern the targets afterwards, in a deterministic
/// merge order.
#[derive(Clone, Debug)]
pub struct CandidateStep {
    /// The joint (composed) model edge taken.
    pub joint: JointEdge,
    /// The target discrete state (intern it to obtain a [`StateIndex`]).
    pub discrete: DiscreteState,
    /// Delay-closed, extrapolated successor zone (never empty).
    pub zone: Dbm,
    /// Whether the step is a controllable (tester) move.
    pub controllable: bool,
}

/// Incremental symbolic explorer over a [`System`].
///
/// States are interned on first sight through a hash map keyed by the full
/// [`DiscreteState`] and receive dense [`StateIndex`]es, so clients can keep
/// per-state data in plain vectors that grow in lockstep with
/// [`Explorer::len`].
#[derive(Clone, Debug)]
pub struct Explorer<'a> {
    system: &'a System,
    max_bounds: Vec<i32>,
    states: Vec<ExploredState>,
    index: HashMap<DiscreteState, StateIndex>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer with no interned states.
    #[must_use]
    pub fn new(system: &'a System) -> Self {
        Explorer {
            system,
            max_bounds: system.max_bounds(),
            states: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The system being explored.
    #[must_use]
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// Number of interned discrete states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The interned states, indexed by [`StateIndex`].
    #[must_use]
    pub fn states(&self) -> &[ExploredState] {
        &self.states
    }

    /// An interned state by index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn state(&self, idx: StateIndex) -> &ExploredState {
        &self.states[idx]
    }

    /// Looks up the index of a discrete state, if it was interned.
    #[must_use]
    pub fn index_of(&self, discrete: &DiscreteState) -> Option<StateIndex> {
        self.index.get(discrete).copied()
    }

    /// Interns a discrete state, computing its invariant and urgency on first
    /// sight.
    ///
    /// # Errors
    ///
    /// Returns an error if an invariant bound cannot be evaluated.
    pub fn intern(&mut self, discrete: DiscreteState) -> Result<StateIndex, ModelError> {
        if let Some(&idx) = self.index.get(&discrete) {
            return Ok(idx);
        }
        let invariant = self.system.invariant_zone(&discrete)?;
        let urgent = self.system.is_urgent(&discrete);
        let idx = self.states.len();
        self.states.push(ExploredState {
            discrete: discrete.clone(),
            invariant,
            urgent,
        });
        self.index.insert(discrete, idx);
        Ok(idx)
    }

    /// Interns the initial discrete state and returns it together with the
    /// delay-closed, extrapolated initial zone — the root of any forward
    /// exploration.
    ///
    /// # Errors
    ///
    /// Propagates invariant evaluation errors.
    pub fn initial(&mut self) -> Result<(StateIndex, Dbm), ModelError> {
        let root = self.system.initial_exploration_state()?;
        let idx = self.intern(root.discrete)?;
        Ok((idx, root.zone))
    }

    /// Enumerates the symbolic successors of `(source, zone)`: one
    /// [`SuccessorStep`] per enabled joint edge whose delay-closed successor
    /// zone is non-empty.  Target states are interned on the fly.
    ///
    /// # Errors
    ///
    /// Propagates guard/update/invariant evaluation errors.
    pub fn successors(
        &mut self,
        source: StateIndex,
        zone: &Dbm,
    ) -> Result<Vec<SuccessorStep>, ModelError> {
        let candidates = self.successor_candidates(source, zone)?;
        let mut steps = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let target = self.intern(candidate.discrete)?;
            steps.push(SuccessorStep {
                joint: candidate.joint,
                target,
                zone: candidate.zone,
                controllable: candidate.controllable,
            });
        }
        Ok(steps)
    }

    /// The read-only half of [`Explorer::successors`]: enumerates the
    /// symbolic successors of `(source, zone)` without interning the target
    /// states, so it can run on worker threads against a shared `&Explorer`.
    ///
    /// # Errors
    ///
    /// Propagates guard/update/invariant evaluation errors.
    pub fn successor_candidates(
        &self,
        source: StateIndex,
        zone: &Dbm,
    ) -> Result<Vec<CandidateStep>, ModelError> {
        let discrete = &self.states[source].discrete;
        let joint_edges = self.system.enabled_joint_edges(discrete)?;
        let mut steps = Vec::with_capacity(joint_edges.len());
        for joint in joint_edges {
            let Some(mut succ) = self.system.joint_successor_from(discrete, zone, &joint)? else {
                continue;
            };
            self.system.delay_close(&mut succ, &self.max_bounds)?;
            if succ.zone.is_empty() {
                continue;
            }
            let controllable = self.system.is_controllable(&joint);
            steps.push(CandidateStep {
                joint,
                discrete: succ.discrete,
                zone: succ.zone,
                controllable,
            });
        }
        Ok(steps)
    }

    /// Predecessor federation of `target` through `joint` from the interned
    /// source state: the union of [`System::joint_pred_zone`] over the member
    /// zones.
    ///
    /// # Errors
    ///
    /// Propagates guard/reset/invariant evaluation errors.
    pub fn pred_federation(
        &self,
        source: StateIndex,
        joint: &JointEdge,
        target: &Federation,
    ) -> Result<Federation, ModelError> {
        self.system
            .joint_pred_federation(&self.states[source].discrete, joint, target)
    }
}

impl System {
    /// Predecessor federation through a joint edge: the set of source-state
    /// valuations from which taking `je` lands inside some member zone of
    /// `target`.
    ///
    /// # Errors
    ///
    /// Propagates guard/reset/invariant evaluation errors from
    /// [`System::joint_pred_zone`].
    pub fn joint_pred_federation(
        &self,
        source: &DiscreteState,
        je: &JointEdge,
        target: &Federation,
    ) -> Result<Federation, ModelError> {
        let mut out = Federation::empty(self.dim());
        for zone in target {
            out.add_zone(self.joint_pred_zone(source, je, zone)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ClockConstraint;
    use crate::builder::{AutomatonBuilder, EdgeBuilder, SystemBuilder};
    use crate::expr::CmpOp;

    /// Plant: Idle --go?--> Work (resets x, invariant x <= 5),
    /// Work --done!{x>=2}--> Idle; User closes the system.
    fn sample_system() -> System {
        let mut b = SystemBuilder::new("sample");
        let x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let done = b.output_channel("done").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let work = plant.location("Work").unwrap();
        plant.set_invariant(work, vec![ClockConstraint::new(x, CmpOp::Le, 5)]);
        plant.add_edge(EdgeBuilder::new(idle, work).input(go).reset(x));
        plant.add_edge(
            EdgeBuilder::new(work, idle)
                .output(done)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(go));
        user.add_edge(EdgeBuilder::new(u, u).input(done));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn interning_is_idempotent_and_caches_invariants() {
        let sys = sample_system();
        let mut ex = Explorer::new(&sys);
        assert!(ex.is_empty());
        let (root, zone) = ex.initial().unwrap();
        assert_eq!(ex.len(), 1);
        assert!(!zone.is_empty());
        let again = ex.intern(sys.initial_discrete()).unwrap();
        assert_eq!(root, again);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex.index_of(&sys.initial_discrete()), Some(root));
        assert!(!ex.state(root).urgent);
        assert_eq!(ex.state(root).discrete, sys.initial_discrete());
    }

    #[test]
    fn successors_are_delay_closed_and_intern_targets() {
        let sys = sample_system();
        let mut ex = Explorer::new(&sys);
        let (root, zone) = ex.initial().unwrap();
        let steps = ex.successors(root, &zone).unwrap();
        assert_eq!(steps.len(), 1);
        let step = &steps[0];
        assert!(step.controllable, "go? is a tester input");
        assert_ne!(step.target, root);
        assert_eq!(ex.len(), 2);
        // Delay-closed within the Work invariant x <= 5.
        assert!(step.zone.contains_scaled(&[0, 10]));
        assert!(!step.zone.contains_scaled(&[0, 11]));
        // The Work state's cached invariant agrees.
        let work = ex.state(step.target);
        assert!(work.invariant.contains_scaled(&[0, 10]));
        assert!(!work.invariant.contains_scaled(&[0, 11]));
    }

    #[test]
    fn pred_federation_inverts_successor_zones() {
        let sys = sample_system();
        let mut ex = Explorer::new(&sys);
        let (root, zone) = ex.initial().unwrap();
        let step = ex.successors(root, &zone).unwrap().remove(0);
        let target_fed = Federation::from_zone(step.zone.clone());
        let pred = ex.pred_federation(root, &step.joint, &target_fed).unwrap();
        // Every valuation of the root zone can take go? into the successor.
        for z in &Federation::from_zone(zone) {
            assert!(pred.includes_zone(z));
        }
    }
}
