//! Symbolic (zone-based) semantics of a network of timed I/O game automata.
//!
//! The functions here provide everything the timed-game solver needs:
//! enumeration of joint edges in a discrete state, forward successor zones,
//! backward (predecessor) zones, invariants and extrapolation bounds.

use crate::automaton::Sync;
use crate::decl::{Action, ChannelKind};
use crate::error::ModelError;
use crate::ids::{AutomatonId, ChannelId, EdgeId, LocationId};
use crate::system::System;
use std::fmt;
use tiga_dbm::{Bound, Dbm};

/// The discrete part of a system state: one location per automaton plus the
/// flattened store of bounded integer variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteState {
    /// Current location of each automaton (indexed by automaton).
    pub locations: Vec<LocationId>,
    /// Flattened values of the discrete variables.
    pub vars: Vec<i64>,
}

impl DiscreteState {
    /// Renders the state as `Aut1.Loc, Aut2.Loc [v1=..., ...]` using the
    /// system's names.
    #[must_use]
    pub fn display<'a>(&'a self, system: &'a System) -> DisplayDiscreteState<'a> {
        DisplayDiscreteState {
            state: self,
            system,
        }
    }
}

/// Helper returned by [`DiscreteState::display`].
pub struct DisplayDiscreteState<'a> {
    state: &'a DiscreteState,
    system: &'a System,
}

impl fmt::Display for DisplayDiscreteState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, loc) in self.state.locations.iter().enumerate() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let aut = &self.system.automata()[i];
            write!(f, "{}.{}", aut.name(), aut.location(*loc).name)?;
        }
        if !self.state.vars.is_empty() {
            write!(f, " [")?;
            let mut first = true;
            for decl in self.system.vars().iter() {
                for k in 0..decl.size() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    if decl.is_array() {
                        write!(
                            f,
                            "{}[{}]={}",
                            decl.name(),
                            k,
                            self.state.vars[decl.offset() + k]
                        )?;
                    } else {
                        write!(f, "{}={}", decl.name(), self.state.vars[decl.offset()])?;
                    }
                }
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A symbolic state: a discrete state together with a clock zone.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymbolicState {
    /// Discrete part (locations and variables).
    pub discrete: DiscreteState,
    /// Zone over the system clocks.
    pub zone: Dbm,
}

/// A transition of the composed system: either a single automaton stepping on
/// an internal edge, or two automata synchronizing on a channel.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum JointEdge {
    /// One automaton takes a `tau` edge.
    Internal {
        /// Automaton that moves.
        automaton: AutomatonId,
        /// Edge taken.
        edge: EdgeId,
    },
    /// Two automata synchronize: one emits `channel!`, the other receives
    /// `channel?`.
    Sync {
        /// Channel on which the automata synchronize.
        channel: ChannelId,
        /// Emitting automaton and edge (`channel!`).
        output: (AutomatonId, EdgeId),
        /// Receiving automaton and edge (`channel?`).
        input: (AutomatonId, EdgeId),
    },
}

impl JointEdge {
    /// The observable action corresponding to this joint edge, if any.
    ///
    /// Synchronizations on input/output channels are observable; `tau` steps
    /// and synchronizations on internal channels are not.
    #[must_use]
    pub fn action(&self, system: &System) -> Option<Action> {
        match self {
            JointEdge::Internal { .. } => None,
            JointEdge::Sync { channel, .. } => match system.channel(*channel).kind() {
                ChannelKind::Input => Some(Action::input(*channel)),
                ChannelKind::Output => Some(Action::output(*channel)),
                ChannelKind::Internal => None,
            },
        }
    }

    /// Human-readable label (e.g. `touch?` for an input synchronization).
    #[must_use]
    pub fn label(&self, system: &System) -> String {
        match self {
            JointEdge::Internal { automaton, edge } => {
                let aut = system.automaton(*automaton);
                let e = aut.edge(*edge);
                format!(
                    "{}: {} -> {}",
                    aut.name(),
                    aut.location(e.source).name,
                    aut.location(e.target).name
                )
            }
            JointEdge::Sync { channel, .. } => {
                let ch = system.channel(*channel);
                match ch.kind() {
                    ChannelKind::Input => format!("{}?", ch.name()),
                    ChannelKind::Output => format!("{}!", ch.name()),
                    ChannelKind::Internal => format!("{} (internal)", ch.name()),
                }
            }
        }
    }
}

/// Converts an evaluated reset value into the DBM bound range, rejecting
/// values the [`tiga_dbm::Bound`] encoding cannot represent (constructing
/// such a bound would panic; `.tg` inputs reach this path with arbitrary
/// literals).
fn checked_reset_value(v: i64) -> Result<i32, ModelError> {
    if (0..=i64::from(tiga_dbm::MAX_CONSTANT)).contains(&v) {
        Ok(v as i32)
    } else {
        Err(ModelError::Eval(crate::error::EvalError::Overflow))
    }
}

impl System {
    /// The initial discrete state (initial locations, initial variable
    /// values).
    #[must_use]
    pub fn initial_discrete(&self) -> DiscreteState {
        DiscreteState {
            locations: self.automata.iter().map(|a| a.initial()).collect(),
            vars: self.vars.initial_store(),
        }
    }

    /// The initial symbolic state: all clocks zero, intersected with the
    /// invariant (not yet delay-closed).
    ///
    /// # Errors
    ///
    /// Returns an error if an invariant bound cannot be evaluated.
    pub fn initial_symbolic(&self) -> Result<SymbolicState, ModelError> {
        let discrete = self.initial_discrete();
        let mut zone = Dbm::zero(self.dim());
        let inv = self.invariant_zone(&discrete)?;
        zone.intersect(&inv);
        Ok(SymbolicState { discrete, zone })
    }

    /// The conjunction of all location invariants in a discrete state, as a
    /// zone.
    ///
    /// # Errors
    ///
    /// Returns an error if an invariant bound cannot be evaluated.
    pub fn invariant_zone(&self, d: &DiscreteState) -> Result<Dbm, ModelError> {
        let mut zone = Dbm::universe(self.dim());
        for (i, aut) in self.automata.iter().enumerate() {
            let loc = aut.location(d.locations[i]);
            for c in &loc.invariant {
                if !c.apply_to(&mut zone, &self.vars, &d.vars)? {
                    break;
                }
            }
        }
        Ok(zone)
    }

    /// Returns `true` if any current location is urgent (time may not elapse).
    #[must_use]
    pub fn is_urgent(&self, d: &DiscreteState) -> bool {
        self.automata
            .iter()
            .enumerate()
            .any(|(i, aut)| aut.location(d.locations[i]).urgent)
    }

    /// Enumerates the joint edges whose *data* guards are satisfied in the
    /// discrete state (clock guards are handled symbolically by the caller).
    ///
    /// # Errors
    ///
    /// Returns an error if a data guard cannot be evaluated.
    pub fn enabled_joint_edges(&self, d: &DiscreteState) -> Result<Vec<JointEdge>, ModelError> {
        let mut result = Vec::new();
        // Internal (tau) edges.
        for (ai, aut) in self.automata.iter().enumerate() {
            for ei in aut.edges_from(d.locations[ai]) {
                let edge = aut.edge(ei);
                if edge.sync == Sync::Tau && edge.guard.data_holds(&self.vars, &d.vars)? {
                    result.push(JointEdge::Internal {
                        automaton: AutomatonId::from_index(ai),
                        edge: ei,
                    });
                }
            }
        }
        // Binary synchronizations: every (output edge, input edge) pair on the
        // same channel in two distinct automata.
        for (ai, aut) in self.automata.iter().enumerate() {
            for ei in aut.edges_from(d.locations[ai]) {
                let edge = aut.edge(ei);
                let Sync::Output(ch) = edge.sync else {
                    continue;
                };
                if !edge.guard.data_holds(&self.vars, &d.vars)? {
                    continue;
                }
                for (bi, other) in self.automata.iter().enumerate() {
                    if bi == ai {
                        continue;
                    }
                    for fi in other.edges_from(d.locations[bi]) {
                        let recv = other.edge(fi);
                        if recv.sync == Sync::Input(ch)
                            && recv.guard.data_holds(&self.vars, &d.vars)?
                        {
                            result.push(JointEdge::Sync {
                                channel: ch,
                                output: (AutomatonId::from_index(ai), ei),
                                input: (AutomatonId::from_index(bi), fi),
                            });
                        }
                    }
                }
            }
        }
        Ok(result)
    }

    /// Controllability of a joint edge: synchronizations take the channel's
    /// kind (inputs are controllable), `tau` edges use their explicit
    /// override and default to *uncontrollable*.
    #[must_use]
    pub fn is_controllable(&self, je: &JointEdge) -> bool {
        match je {
            JointEdge::Internal { automaton, edge } => self
                .automaton(*automaton)
                .edge(*edge)
                .controllable
                .unwrap_or(false),
            JointEdge::Sync { channel, .. } => self.channel(*channel).is_controllable(),
        }
    }

    fn joint_components<'a>(&'a self, je: &JointEdge) -> Vec<(usize, &'a crate::automaton::Edge)> {
        match je {
            JointEdge::Internal { automaton, edge } => {
                vec![(automaton.index(), self.automaton(*automaton).edge(*edge))]
            }
            JointEdge::Sync { output, input, .. } => vec![
                (output.0.index(), self.automaton(output.0).edge(output.1)),
                (input.0.index(), self.automaton(input.0).edge(input.1)),
            ],
        }
    }

    /// The conjunction of the clock guards of a joint edge, as a zone.
    ///
    /// # Errors
    ///
    /// Returns an error if a guard bound cannot be evaluated or is non-convex.
    pub fn joint_guard_zone(&self, d: &DiscreteState, je: &JointEdge) -> Result<Dbm, ModelError> {
        let mut zone = Dbm::universe(self.dim());
        for (_, edge) in self.joint_components(je) {
            for c in &edge.guard.clocks {
                if !c.apply_to(&mut zone, &self.vars, &d.vars)? {
                    return Ok(zone);
                }
            }
        }
        Ok(zone)
    }

    /// Applies the discrete effect (location changes and variable updates) of
    /// a joint edge.
    ///
    /// Returns `Ok(None)` if an update drives a bounded variable outside its
    /// declared range (the transition is then considered disabled).
    ///
    /// # Errors
    ///
    /// Returns an error if an update expression cannot be evaluated.
    pub fn apply_joint_discrete(
        &self,
        d: &DiscreteState,
        je: &JointEdge,
    ) -> Result<Option<DiscreteState>, ModelError> {
        let mut next = d.clone();
        for (ai, edge) in self.joint_components(je) {
            next.locations[ai] = edge.target;
            for u in &edge.updates {
                let value = u.value.eval(&self.vars, &next.vars)?;
                if self.vars.check_range(u.target, value).is_err() {
                    return Ok(None);
                }
                let offset = match &u.index {
                    None => self.vars.offset(u.target),
                    Some(idx) => {
                        let i = idx.eval(&self.vars, &next.vars)?;
                        let decl = self.vars.decl(u.target);
                        if i < 0 || i as usize >= decl.size() {
                            return Err(ModelError::Eval(
                                crate::error::EvalError::IndexOutOfBounds {
                                    name: decl.name().to_string(),
                                    index: i,
                                    size: decl.size(),
                                },
                            ));
                        }
                        self.vars.offset(u.target) + i as usize
                    }
                };
                next.vars[offset] = value;
            }
        }
        Ok(Some(next))
    }

    /// Applies the clock effect of a joint edge to a zone: intersect with the
    /// guards, apply resets, intersect with the target invariant.
    ///
    /// The caller supplies the *target* discrete state (obtained from
    /// [`System::apply_joint_discrete`]) so the target invariant can be
    /// evaluated with the updated variables.
    ///
    /// # Errors
    ///
    /// Returns an error if guard/invariant/reset expressions cannot be
    /// evaluated, a reset value is negative, or a constraint is non-convex.
    pub fn apply_joint_zone(
        &self,
        zone: &Dbm,
        source: &DiscreteState,
        target: &DiscreteState,
        je: &JointEdge,
    ) -> Result<Dbm, ModelError> {
        let mut z = zone.clone();
        let components = self.joint_components(je);
        for (_, edge) in &components {
            for c in &edge.guard.clocks {
                if !c.apply_to(&mut z, &self.vars, &source.vars)? {
                    return Ok(z);
                }
            }
        }
        if z.is_empty() {
            return Ok(z);
        }
        for (_, edge) in &components {
            for r in &edge.resets {
                let v = r.value.eval(&self.vars, &source.vars)?;
                if v < 0 {
                    return Err(ModelError::NegativeClockReset(format!(
                        "clock {} := {v}",
                        self.clock(r.clock).name()
                    )));
                }
                let v = checked_reset_value(v)?;
                z.reset(r.clock.dbm_index(), v);
            }
        }
        let inv = self.invariant_zone(target)?;
        z.intersect(&inv);
        Ok(z)
    }

    /// Computes the full symbolic successor of `state` under a joint edge
    /// (guards, resets, updates, target invariant — no delay closure).
    ///
    /// Returns `Ok(None)` if the transition is disabled (empty zone or blocked
    /// update).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from guards, updates and invariants.
    pub fn joint_successor(
        &self,
        state: &SymbolicState,
        je: &JointEdge,
    ) -> Result<Option<SymbolicState>, ModelError> {
        self.joint_successor_from(&state.discrete, &state.zone, je)
    }

    /// Like [`System::joint_successor`], but borrows the source discrete
    /// state and zone separately so hot callers (the explorer's per-edge
    /// candidate fan-out) need not assemble a [`SymbolicState`] per edge.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from guards, updates and invariants.
    pub fn joint_successor_from(
        &self,
        discrete: &DiscreteState,
        zone: &Dbm,
        je: &JointEdge,
    ) -> Result<Option<SymbolicState>, ModelError> {
        let Some(target) = self.apply_joint_discrete(discrete, je)? else {
            return Ok(None);
        };
        let succ = self.apply_joint_zone(zone, discrete, &target, je)?;
        if succ.is_empty() {
            return Ok(None);
        }
        Ok(Some(SymbolicState {
            discrete: target,
            zone: succ,
        }))
    }

    /// Computes the predecessor zone of a joint edge: the set of source-state
    /// valuations from which taking `je` lands inside `target_zone`.
    ///
    /// `target_zone` should be a subset of the target invariant (the solver
    /// maintains this); the result is intersected with the source invariant
    /// and the edge guards.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from guards, resets and invariants.
    pub fn joint_pred_zone(
        &self,
        source: &DiscreteState,
        je: &JointEdge,
        target_zone: &Dbm,
    ) -> Result<Dbm, ModelError> {
        let mut z = target_zone.clone();
        let components = self.joint_components(je);
        // Constrain the reset clocks to their reset values, then free them.
        let mut reset_clocks = Vec::new();
        for (_, edge) in &components {
            for r in &edge.resets {
                let v = r.value.eval(&self.vars, &source.vars)?;
                if v < 0 {
                    return Err(ModelError::NegativeClockReset(format!(
                        "clock {} := {v}",
                        self.clock(r.clock).name()
                    )));
                }
                let v = checked_reset_value(v)?;
                let idx = r.clock.dbm_index();
                if !(z.constrain(idx, 0, Bound::le(v)) && z.constrain(0, idx, Bound::le(-v))) {
                    return Ok(z); // empty: the reset can never land in the target zone
                }
                reset_clocks.push(idx);
            }
        }
        for idx in reset_clocks {
            z.free(idx);
        }
        // Guards and the source invariant.
        for (_, edge) in &components {
            for c in &edge.guard.clocks {
                if !c.apply_to(&mut z, &self.vars, &source.vars)? {
                    return Ok(z);
                }
            }
        }
        let inv = self.invariant_zone(source)?;
        z.intersect(&inv);
        Ok(z)
    }

    /// Delay-closes a symbolic state within its invariant and applies
    /// maximal-constant extrapolation.
    ///
    /// Urgent discrete states are not delayed.
    ///
    /// # Errors
    ///
    /// Returns an error if an invariant bound cannot be evaluated.
    pub fn delay_close(
        &self,
        state: &mut SymbolicState,
        max_bounds: &[i32],
    ) -> Result<(), ModelError> {
        if !self.is_urgent(&state.discrete) {
            state.zone.up();
            let inv = self.invariant_zone(&state.discrete)?;
            state.zone.intersect(&inv);
        }
        state.zone.extrapolate_max_bounds(max_bounds);
        Ok(())
    }

    /// Convenience: the delay-closed, extrapolated initial symbolic state used
    /// as the root of forward exploration.
    ///
    /// # Errors
    ///
    /// Propagates invariant evaluation errors.
    pub fn initial_exploration_state(&self) -> Result<SymbolicState, ModelError> {
        let mut s = self.initial_symbolic()?;
        let max = self.max_bounds();
        self.delay_close(&mut s, &max)?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ClockConstraint;
    use crate::builder::{AutomatonBuilder, EdgeBuilder, SystemBuilder};
    use crate::expr::{CmpOp, Expr};

    /// A two-automaton system:
    ///  * `Plant`: Idle --go?--> Work (resets x), Work --done!--> Idle when x >= 2,
    ///    invariant Work: x <= 5, counter `count` incremented on done.
    ///  * `User`: U0 --go!--> U1, U1 --done?--> U0.
    fn sample_system() -> System {
        let mut b = SystemBuilder::new("sample");
        let x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let done = b.output_channel("done").unwrap();
        let count = b.int_var("count", 0, 3, 0).unwrap();

        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let work = plant.location("Work").unwrap();
        plant.set_initial(idle);
        plant.set_invariant(work, vec![ClockConstraint::new(x, CmpOp::Le, 5)]);
        plant.add_edge(EdgeBuilder::new(idle, work).input(go).reset(x));
        plant.add_edge(
            EdgeBuilder::new(work, idle)
                .output(done)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2))
                .set(count, Expr::var(count) + Expr::constant(1)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();

        let mut user = AutomatonBuilder::new("User");
        let u0 = user.location("U0").unwrap();
        let u1 = user.location("U1").unwrap();
        user.set_initial(u0);
        user.add_edge(EdgeBuilder::new(u0, u1).output(go));
        user.add_edge(EdgeBuilder::new(u1, u0).input(done));
        b.add_automaton(user.build().unwrap()).unwrap();

        b.build().unwrap()
    }

    #[test]
    fn initial_states() {
        let sys = sample_system();
        let d0 = sys.initial_discrete();
        assert_eq!(d0.locations.len(), 2);
        assert_eq!(d0.vars, vec![0]);
        let s0 = sys.initial_symbolic().unwrap();
        assert!(s0.zone.contains_scaled(&[0, 0]));
        assert!(!s0.zone.contains_scaled(&[0, 2]));
        let root = sys.initial_exploration_state().unwrap();
        // Delay-closed: any delay allowed in (Idle, U0).
        assert!(root.zone.contains_scaled(&[0, 20]));
    }

    #[test]
    fn joint_edge_enumeration_and_controllability() {
        let sys = sample_system();
        let d0 = sys.initial_discrete();
        let edges = sys.enabled_joint_edges(&d0).unwrap();
        // Only the `go` synchronization is possible initially.
        assert_eq!(edges.len(), 1);
        let go_edge = &edges[0];
        assert!(matches!(go_edge, JointEdge::Sync { .. }));
        assert!(sys.is_controllable(go_edge));
        assert_eq!(go_edge.label(&sys), "go?");
        let action = go_edge.action(&sys).unwrap();
        assert!(action.is_input());

        // After `go`, the `done` synchronization is available and uncontrollable.
        let d1 = sys.apply_joint_discrete(&d0, go_edge).unwrap().unwrap();
        let edges1 = sys.enabled_joint_edges(&d1).unwrap();
        assert_eq!(edges1.len(), 1);
        assert!(!sys.is_controllable(&edges1[0]));
        assert_eq!(edges1[0].label(&sys), "done!");
    }

    #[test]
    fn successor_computation_applies_guard_reset_invariant() {
        let sys = sample_system();
        let root = sys.initial_exploration_state().unwrap();
        let edges = sys.enabled_joint_edges(&root.discrete).unwrap();
        let s1 = sys.joint_successor(&root, &edges[0]).unwrap().unwrap();
        // x was reset and the Work invariant x <= 5 applies.
        assert!(s1.zone.contains_scaled(&[0, 0]));
        assert!(!s1.zone.contains_scaled(&[0, 2])); // not delay-closed yet
        let mut s1d = s1.clone();
        sys.delay_close(&mut s1d, &sys.max_bounds()).unwrap();
        assert!(s1d.zone.contains_scaled(&[0, 10])); // x = 5 allowed
        assert!(!s1d.zone.contains_scaled(&[0, 11])); // x = 5.5 violates invariant

        // Taking `done` requires x >= 2 and increments the counter.
        let edges1 = sys.enabled_joint_edges(&s1d.discrete).unwrap();
        let s2 = sys.joint_successor(&s1d, &edges1[0]).unwrap().unwrap();
        assert_eq!(s2.discrete.vars, vec![1]);
        assert!(s2.zone.contains_scaled(&[0, 4]));
        assert!(!s2.zone.contains_scaled(&[0, 2])); // x = 1 < 2 cut by guard
    }

    #[test]
    fn blocked_update_disables_transition() {
        let sys = sample_system();
        // Drive the counter to its maximum, after which `done` is blocked.
        let mut d = sys.initial_discrete();
        d.vars[0] = 3;
        // Move to (Work, U1) discretely.
        let go = &sys.enabled_joint_edges(&d).unwrap()[0];
        let d1 = sys.apply_joint_discrete(&d, go).unwrap().unwrap();
        let done = &sys.enabled_joint_edges(&d1).unwrap()[0];
        assert!(sys.apply_joint_discrete(&d1, done).unwrap().is_none());
    }

    #[test]
    fn predecessor_inverts_successor() {
        let sys = sample_system();
        let root = sys.initial_exploration_state().unwrap();
        let go = &sys.enabled_joint_edges(&root.discrete).unwrap()[0];
        let s1 = sys.joint_successor(&root, go).unwrap().unwrap();
        // Predecessor of the full successor zone must contain the root zone
        // (every root valuation can take the edge and land in the successor).
        let mut succ_zone = s1.zone.clone();
        succ_zone.up();
        let inv = sys.invariant_zone(&s1.discrete).unwrap();
        succ_zone.intersect(&inv);
        let pred = sys.joint_pred_zone(&root.discrete, go, &succ_zone).unwrap();
        assert!(root.zone.is_subset_of(&pred));
    }

    #[test]
    fn discrete_state_display_names_everything() {
        let sys = sample_system();
        let d0 = sys.initial_discrete();
        let s = format!("{}", d0.display(&sys));
        assert!(s.contains("Plant.Idle"), "{s}");
        assert!(s.contains("User.U0"), "{s}");
        assert!(s.contains("count=0"), "{s}");
    }

    #[test]
    fn urgent_locations_block_delay() {
        let mut b = SystemBuilder::new("urgent");
        let x = b.clock("x").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.set_urgent(l0);
        a.add_edge(EdgeBuilder::new(l0, l0).guard_clock(ClockConstraint::new(x, CmpOp::Ge, 0)));
        b.add_automaton(a.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let root = sys.initial_exploration_state().unwrap();
        assert!(root.zone.contains_scaled(&[0, 0]));
        assert!(!root.zone.contains_scaled(&[0, 2]));
    }
}
