//! Timed (I/O game) automata: locations, edges, guards, invariants.

use crate::decl::{ClockRef, VarTable};
use crate::error::{EvalError, ModelError};
use crate::expr::{CmpOp, Expr};
use crate::ids::{ChannelId, ClockId, EdgeId, LocationId, VarId};
use tiga_dbm::{Bound, Dbm};

/// A single clock constraint `c  op  bound` or `c - c'  op  bound`, where the
/// bound is an integer expression over the discrete variables (most often a
/// constant such as `Tidle = 20` in the Smart Light model).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockConstraint {
    /// Left-hand clock.
    pub left: ClockId,
    /// Optional clock subtracted from the left-hand clock.
    pub minus: Option<ClockId>,
    /// Comparison operator (must be convex: `!=` is rejected).
    pub op: CmpOp,
    /// Right-hand side, evaluated against the discrete variables.
    pub bound: Expr,
}

impl ClockConstraint {
    /// `clock op bound`.
    #[must_use]
    pub fn new(clock: ClockId, op: CmpOp, bound: impl Into<Expr>) -> Self {
        ClockConstraint {
            left: clock,
            minus: None,
            op,
            bound: bound.into(),
        }
    }

    /// `left - right op bound` (diagonal constraint).
    #[must_use]
    pub fn diff(left: ClockId, right: ClockId, op: CmpOp, bound: impl Into<Expr>) -> Self {
        ClockConstraint {
            left,
            minus: Some(right),
            op,
            bound: bound.into(),
        }
    }

    /// Conjoins this constraint onto a DBM, evaluating the bound against the
    /// given variable store.  Returns `false` if the zone becomes empty.
    ///
    /// # Errors
    ///
    /// Returns an error if the bound expression cannot be evaluated, the
    /// operator is `!=` (non-convex), or the bound constant lies outside the
    /// DBM encoding's `[-MAX_CONSTANT, MAX_CONSTANT]` range (this must be a
    /// diagnostic, not a [`Bound`] constructor panic: `.tg` inputs reach
    /// this path with arbitrary literals, e.g. `guard x >= -2147483648`,
    /// whose negation also overflows a plain `i32`).
    pub fn apply_to(
        &self,
        zone: &mut Dbm,
        table: &VarTable,
        store: &[i64],
    ) -> Result<bool, ModelError> {
        let m64 = self.bound.eval(table, store)?;
        let limit = i64::from(tiga_dbm::MAX_CONSTANT);
        if !(-limit..=limit).contains(&m64) {
            return Err(ModelError::Eval(EvalError::Overflow));
        }
        let m = i32::try_from(m64).map_err(|_| ModelError::Eval(EvalError::Overflow))?;
        let i = self.left.dbm_index();
        let j = self.minus.map_or(0, ClockId::dbm_index);
        let ok = match self.op {
            CmpOp::Le => zone.constrain(i, j, Bound::le(m)),
            CmpOp::Lt => zone.constrain(i, j, Bound::lt(m)),
            CmpOp::Ge => zone.constrain(j, i, Bound::le(-m)),
            CmpOp::Gt => zone.constrain(j, i, Bound::lt(-m)),
            CmpOp::Eq => zone.constrain(i, j, Bound::le(m)) && zone.constrain(j, i, Bound::le(-m)),
            CmpOp::Ne => {
                return Err(ModelError::NonConvexClockConstraint(format!(
                    "clock {} != {}",
                    self.left, m
                )))
            }
        };
        Ok(ok)
    }

    /// Checks the constraint against a concrete valuation in ticks
    /// (`scale` ticks per time unit).
    ///
    /// # Errors
    ///
    /// Returns an error if the bound expression cannot be evaluated.
    pub fn holds_concrete(
        &self,
        clock_ticks: &[i64],
        scale: i64,
        table: &VarTable,
        store: &[i64],
    ) -> Result<bool, ModelError> {
        let m = self.bound.eval(table, store)?;
        let left = clock_ticks[self.left.index()];
        let right = self.minus.map_or(0, |c| clock_ticks[c.index()]);
        Ok(self.op.apply(left - right, m * scale))
    }

    /// Largest constant this constraint can contribute for extrapolation
    /// purposes, conservatively using variable upper bounds when the bound is
    /// not a constant.
    #[must_use]
    pub fn max_constant(&self, table: &VarTable) -> i64 {
        if let Some(c) = self.bound.as_constant() {
            c.abs()
        } else {
            // Conservative: the largest absolute value any variable may take,
            // plus the largest constant literal mentioned, bounded below by 1.
            let var_bound = table
                .iter()
                .map(|d| d.lower().abs().max(d.upper().abs()))
                .max()
                .unwrap_or(0);
            var_bound.max(1) * 2
        }
    }
}

/// A clock reset `clock := value` performed on an edge.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockReset {
    /// Clock being reset.
    pub clock: ClockId,
    /// New value (must evaluate to a non-negative integer).
    pub value: Expr,
}

impl ClockReset {
    /// Reset to zero, the common case.
    #[must_use]
    pub fn to_zero(clock: ClockId) -> Self {
        ClockReset {
            clock,
            value: Expr::constant(0),
        }
    }

    /// Reset to an arbitrary expression.
    #[must_use]
    pub fn to_value(clock: ClockId, value: impl Into<Expr>) -> Self {
        ClockReset {
            clock,
            value: value.into(),
        }
    }
}

/// An assignment `var := value` or `array[index] := value` performed on an
/// edge.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Assignment {
    /// Variable (or array) being assigned.
    pub target: VarId,
    /// Element index for arrays, `None` for scalars.
    pub index: Option<Expr>,
    /// Assigned value.
    pub value: Expr,
}

impl Assignment {
    /// `target := value` for scalars.
    #[must_use]
    pub fn set(target: VarId, value: impl Into<Expr>) -> Self {
        Assignment {
            target,
            index: None,
            value: value.into(),
        }
    }

    /// `target[index] := value` for arrays.
    #[must_use]
    pub fn set_element(target: VarId, index: impl Into<Expr>, value: impl Into<Expr>) -> Self {
        Assignment {
            target,
            index: Some(index.into()),
            value: value.into(),
        }
    }
}

/// Synchronization label of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sync {
    /// Internal step, not synchronizing with any other automaton.
    Tau,
    /// Receiving synchronization `c?`.
    Input(ChannelId),
    /// Emitting synchronization `c!`.
    Output(ChannelId),
}

impl Sync {
    /// The channel mentioned by the label, if any.
    #[must_use]
    pub fn channel(self) -> Option<ChannelId> {
        match self {
            Sync::Tau => None,
            Sync::Input(c) | Sync::Output(c) => Some(c),
        }
    }
}

/// The guard of an edge: a conjunction of clock constraints and a data guard
/// over the discrete variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Guard {
    /// Conjunction of clock constraints (empty means `true`).
    pub clocks: Vec<ClockConstraint>,
    /// Data guard over discrete variables (`None` means `true`).
    pub data: Option<Expr>,
}

impl Guard {
    /// The trivially true guard.
    #[must_use]
    pub fn always() -> Self {
        Guard::default()
    }

    /// Evaluates the data part of the guard.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn data_holds(&self, table: &VarTable, store: &[i64]) -> Result<bool, ModelError> {
        match &self.data {
            None => Ok(true),
            Some(e) => Ok(e.eval_bool(table, store)?),
        }
    }
}

/// An edge (transition) of an automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Source location.
    pub source: LocationId,
    /// Target location.
    pub target: LocationId,
    /// Synchronization label.
    pub sync: Sync,
    /// Guard.
    pub guard: Guard,
    /// Clock resets, applied after the guard is checked.
    pub resets: Vec<ClockReset>,
    /// Variable updates, applied in order.
    pub updates: Vec<Assignment>,
    /// Controllability override for `Tau` edges (sync edges take theirs from
    /// the channel kind).
    pub controllable: Option<bool>,
}

/// A location of an automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Location {
    /// Location name (unique within the automaton).
    pub name: String,
    /// Location invariant: a conjunction of clock constraints.
    pub invariant: Vec<ClockConstraint>,
    /// Urgent locations do not let time pass.
    pub urgent: bool,
}

impl Location {
    /// Creates a location with no invariant.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Location {
            name: name.to_string(),
            invariant: Vec::new(),
            urgent: false,
        }
    }
}

/// A single timed (I/O game) automaton.
///
/// Controllability of actions is declared on the channels of the enclosing
/// [`crate::System`]; an automaton on its own is just a timed automaton with
/// synchronization labels.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Automaton {
    pub(crate) name: String,
    pub(crate) locations: Vec<Location>,
    pub(crate) initial: LocationId,
    pub(crate) edges: Vec<Edge>,
}

impl Automaton {
    /// Automaton name (unique within the system).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared locations.
    #[must_use]
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// The initial location.
    #[must_use]
    pub fn initial(&self) -> LocationId {
        self.initial
    }

    /// The declared edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A location by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this automaton.
    #[must_use]
    pub fn location(&self, id: LocationId) -> &Location {
        &self.locations[id.index()]
    }

    /// An edge by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this automaton.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Looks up a location by name.
    #[must_use]
    pub fn location_by_name(&self, name: &str) -> Option<LocationId> {
        self.locations
            .iter()
            .position(|l| l.name == name)
            .map(LocationId::from_index)
    }

    /// Identifiers of the edges leaving a location.
    pub fn edges_from(&self, loc: LocationId) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.source == loc)
            .map(|(i, _)| EdgeId::from_index(i))
    }
}

/// Helper re-exported for guard construction: `clock op bound`.
#[must_use]
pub fn clock_cmp(clock: ClockId, op: CmpOp, bound: impl Into<Expr>) -> ClockConstraint {
    ClockConstraint::new(clock, op, bound)
}

/// Reference to a clock or the constant zero, used by strategy output.
///
/// Currently only used for pretty-printing; kept here to avoid leaking DBM
/// indices into user-facing APIs.
#[must_use]
pub fn clock_ref(clock: ClockId) -> ClockRef {
    ClockRef::Clock(clock)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_table() -> VarTable {
        VarTable::new()
    }

    #[test]
    fn clock_constraint_to_dbm() {
        let table = empty_table();
        let x = ClockId::from_index(0);
        let mut zone = Dbm::universe(2);
        // x >= 4
        assert!(ClockConstraint::new(x, CmpOp::Ge, 4)
            .apply_to(&mut zone, &table, &[])
            .unwrap());
        // x < 10
        assert!(ClockConstraint::new(x, CmpOp::Lt, 10)
            .apply_to(&mut zone, &table, &[])
            .unwrap());
        assert!(zone.contains_scaled(&[0, 8]));
        assert!(!zone.contains_scaled(&[0, 6]));
        assert!(!zone.contains_scaled(&[0, 20]));
        // x == 5 empties when combined with x >= 6.
        let mut z2 = Dbm::universe(2);
        assert!(ClockConstraint::new(x, CmpOp::Ge, 6)
            .apply_to(&mut z2, &table, &[])
            .unwrap());
        assert!(!ClockConstraint::new(x, CmpOp::Eq, 5)
            .apply_to(&mut z2, &table, &[])
            .unwrap());
        assert!(z2.is_empty());
    }

    #[test]
    fn out_of_range_bounds_error_instead_of_panicking() {
        // Constants the Bound encoding cannot represent must surface as
        // evaluation errors, never as constructor panics — `.tg` inputs
        // reach this path with arbitrary literals.  `i32::MIN` is the nasty
        // one: it fits an i32, but `Ge`/`Gt` negate the constant.
        let table = empty_table();
        let x = ClockId::from_index(0);
        for value in [
            i64::from(i32::MIN),
            -i64::from(i32::MAX),
            i64::from(i32::MAX),
            i64::from(tiga_dbm::MAX_CONSTANT) + 1,
            -(i64::from(tiga_dbm::MAX_CONSTANT) + 1),
            i64::MIN,
            i64::MAX,
        ] {
            for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq] {
                let mut zone = Dbm::universe(2);
                let err = ClockConstraint::new(x, op, value)
                    .apply_to(&mut zone, &table, &[])
                    .expect_err("out-of-range bound must error");
                assert!(matches!(err, ModelError::Eval(EvalError::Overflow)));
            }
        }
        // The full in-range boundary still works.
        let mut zone = Dbm::universe(2);
        assert!(
            ClockConstraint::new(x, CmpOp::Ge, -i64::from(tiga_dbm::MAX_CONSTANT))
                .apply_to(&mut zone, &table, &[])
                .unwrap()
        );
    }

    #[test]
    fn diagonal_constraint_to_dbm() {
        let table = empty_table();
        let x = ClockId::from_index(0);
        let y = ClockId::from_index(1);
        let mut zone = Dbm::universe(3);
        assert!(ClockConstraint::diff(x, y, CmpOp::Le, 2)
            .apply_to(&mut zone, &table, &[])
            .unwrap());
        assert!(zone.contains_scaled(&[0, 4, 0]));
        assert!(!zone.contains_scaled(&[0, 6, 0]));
    }

    #[test]
    fn nonconvex_constraint_rejected() {
        let table = empty_table();
        let x = ClockId::from_index(0);
        let mut zone = Dbm::universe(2);
        let err = ClockConstraint::new(x, CmpOp::Ne, 3)
            .apply_to(&mut zone, &table, &[])
            .unwrap_err();
        assert!(matches!(err, ModelError::NonConvexClockConstraint(_)));
    }

    #[test]
    fn constraint_with_variable_bound() {
        let mut table = VarTable::new();
        let t_idle = table.declare("Tidle", 1, 0, 100, 20).unwrap();
        let store = table.initial_store();
        let x = ClockId::from_index(0);
        let mut zone = Dbm::universe(2);
        assert!(ClockConstraint::new(x, CmpOp::Ge, Expr::var(t_idle))
            .apply_to(&mut zone, &table, &store)
            .unwrap());
        assert!(zone.contains_scaled(&[0, 40]));
        assert!(!zone.contains_scaled(&[0, 39]));
    }

    #[test]
    fn concrete_evaluation_of_constraints() {
        let table = empty_table();
        let x = ClockId::from_index(0);
        let c = ClockConstraint::new(x, CmpOp::Ge, 4);
        // scale 2: clock ticks of 7 mean 3.5 time units.
        assert!(!c.holds_concrete(&[7], 2, &table, &[]).unwrap());
        assert!(c.holds_concrete(&[8], 2, &table, &[]).unwrap());
        let d = ClockConstraint::new(x, CmpOp::Lt, 4);
        assert!(d.holds_concrete(&[7], 2, &table, &[]).unwrap());
        assert!(!d.holds_concrete(&[8], 2, &table, &[]).unwrap());
    }

    #[test]
    fn max_constant_for_extrapolation() {
        let mut table = VarTable::new();
        let n = table.declare("n", 1, 0, 8, 3).unwrap();
        let x = ClockId::from_index(0);
        assert_eq!(
            ClockConstraint::new(x, CmpOp::Le, 20).max_constant(&table),
            20
        );
        assert_eq!(
            ClockConstraint::new(x, CmpOp::Le, Expr::constant(-7)).max_constant(&table),
            7
        );
        // Variable-dependent bounds fall back to a conservative estimate.
        assert!(ClockConstraint::new(x, CmpOp::Le, Expr::var(n)).max_constant(&table) >= 8);
    }

    #[test]
    fn guard_data_part() {
        let mut table = VarTable::new();
        let v = table.declare("v", 1, 0, 5, 2).unwrap();
        let store = table.initial_store();
        let guard = Guard {
            clocks: vec![],
            data: Some(Expr::var(v).ge(Expr::constant(2))),
        };
        assert!(guard.data_holds(&table, &store).unwrap());
        let guard2 = Guard {
            clocks: vec![],
            data: Some(Expr::var(v).gt(Expr::constant(2))),
        };
        assert!(!guard2.data_holds(&table, &store).unwrap());
        assert!(Guard::always().data_holds(&table, &store).unwrap());
    }

    #[test]
    fn sync_channel_accessor() {
        let c = ChannelId::from_index(1);
        assert_eq!(Sync::Input(c).channel(), Some(c));
        assert_eq!(Sync::Output(c).channel(), Some(c));
        assert_eq!(Sync::Tau.channel(), None);
    }
}
