//! Property-based consistency checks between the concrete (tick-level) and
//! symbolic (zone-level) semantics of randomly generated small systems:
//! every concrete run must stay inside the forward-reachable symbolic states.

use proptest::prelude::*;
use tiga_model::{
    AutomatonBuilder, ClockConstraint, CmpOp, ConcreteState, DiscreteState, EdgeBuilder,
    Interpreter, SymbolicState, System, SystemBuilder,
};

/// Description of one random edge of the generated plant.
#[derive(Clone, Debug)]
struct RandomEdge {
    source: usize,
    target: usize,
    is_output: bool,
    guard_lower: i64,
    guard_upper: Option<i64>,
    reset: bool,
}

/// Description of a random two-location-to-four-location plant with one clock
/// and one input/one output channel.
#[derive(Clone, Debug)]
struct RandomPlant {
    locations: usize,
    invariant_bounds: Vec<Option<i64>>,
    edges: Vec<RandomEdge>,
}

fn arb_plant() -> impl Strategy<Value = RandomPlant> {
    let locations = 2..5usize;
    locations.prop_flat_map(|locations| {
        let invariants = proptest::collection::vec(proptest::option::of(1..6i64), locations);
        let edges = proptest::collection::vec(
            (
                0..locations,
                0..locations,
                any::<bool>(),
                0..4i64,
                proptest::option::of(4..8i64),
                any::<bool>(),
            )
                .prop_map(
                    |(source, target, is_output, guard_lower, guard_upper, reset)| RandomEdge {
                        source,
                        target,
                        is_output,
                        guard_lower,
                        guard_upper,
                        reset,
                    },
                ),
            1..6,
        );
        (invariants, edges).prop_map(move |(invariant_bounds, edges)| RandomPlant {
            locations,
            invariant_bounds,
            edges,
        })
    })
}

fn build(plant: &RandomPlant) -> System {
    let mut b = SystemBuilder::new("random");
    let x = b.clock("x").unwrap();
    let input = b.input_channel("in").unwrap();
    let output = b.output_channel("out").unwrap();
    let mut a = AutomatonBuilder::new("P");
    let locs: Vec<_> = (0..plant.locations)
        .map(|i| a.location(&format!("L{i}")).unwrap())
        .collect();
    for (i, inv) in plant.invariant_bounds.iter().enumerate() {
        if let Some(bound) = inv {
            a.set_invariant(locs[i], vec![ClockConstraint::new(x, CmpOp::Le, *bound)]);
        }
    }
    for e in &plant.edges {
        let mut edge = EdgeBuilder::new(locs[e.source], locs[e.target])
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, e.guard_lower));
        if let Some(upper) = e.guard_upper {
            edge = edge.guard_clock(ClockConstraint::new(x, CmpOp::Le, upper));
        }
        edge = if e.is_output {
            edge.output(output)
        } else {
            edge.input(input)
        };
        if e.reset {
            edge = edge.reset(x);
        }
        a.add_edge(edge);
    }
    b.add_automaton(a.build().unwrap()).unwrap();
    // A chaotic environment closes the network, so that the closed (symbolic
    // product) semantics and the concrete closed-view runs coincide.
    let mut env = AutomatonBuilder::new("Env");
    let e = env.location("E").unwrap();
    env.add_edge(EdgeBuilder::new(e, e).output(input));
    env.add_edge(EdgeBuilder::new(e, e).input(output));
    b.add_automaton(env.build().unwrap()).unwrap();
    b.build().unwrap()
}

/// Forward-explores the symbolic state space and checks that a concrete state
/// is covered by some reachable symbolic state.
fn symbolically_reachable(system: &System, state: &ConcreteState, scale: i64) -> bool {
    let max = system.max_bounds();
    let mut seen: Vec<SymbolicState> = Vec::new();
    let mut queue = vec![system.initial_exploration_state().unwrap()];
    while let Some(s) = queue.pop() {
        if seen
            .iter()
            .any(|t| t.discrete == s.discrete && s.zone.is_subset_of(&t.zone))
        {
            continue;
        }
        seen.push(s.clone());
        for je in system.enabled_joint_edges(&s.discrete).unwrap() {
            if let Some(mut succ) = system.joint_successor(&s, &je).unwrap() {
                system.delay_close(&mut succ, &max).unwrap();
                if !succ.zone.is_empty() {
                    queue.push(succ);
                }
            }
        }
    }
    let discrete = DiscreteState {
        locations: state.locations.clone(),
        vars: state.vars.clone(),
    };
    let mut point = Vec::with_capacity(state.clocks.len() + 1);
    point.push(0);
    point.extend_from_slice(&state.clocks);
    seen.iter()
        .any(|s| s.discrete == discrete && s.zone.contains_at(&point, scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every state reached by a random concrete run (alternating delays and
    /// enabled synchronizations of the closed network) is covered by the
    /// forward symbolic reachability relation — i.e. the zone semantics
    /// over-approximates the tick semantics.
    #[test]
    fn concrete_runs_stay_within_symbolic_reachability(
        plant in arb_plant(),
        choices in proptest::collection::vec((0..4i64, 0..4usize), 0..6),
    ) {
        let system = build(&plant);
        let scale = 2;
        let interp = Interpreter::new(&system, scale).unwrap();
        let mut state = interp.initial_state().unwrap();
        prop_assert!(symbolically_reachable(&system, &state, scale));
        for (delay_units, pick) in choices {
            // Delay, clamped by the invariant.
            let mut delay = delay_units * scale;
            if let Some(bound) = interp.max_delay(&state).unwrap() {
                delay = delay.min(bound);
            }
            if let Some(next) = interp.delayed(&state, delay).unwrap() {
                state = next;
            }
            // Fire one of the enabled synchronizations, if any.
            let syncs = interp.enabled_syncs(&state).unwrap();
            if !syncs.is_empty() {
                let channel = syncs[pick % syncs.len()];
                if let Some(next) = interp.fire_sync(&state, channel).unwrap() {
                    state = next;
                }
            }
            prop_assert!(
                symbolically_reachable(&system, &state, scale),
                "state {:?} escaped the symbolic reachability relation",
                state
            );
        }
    }

    /// The maximal delay reported by the interpreter is exactly the largest
    /// delay that keeps the invariants satisfied.
    #[test]
    fn max_delay_is_tight(plant in arb_plant(), extra in 1..5i64) {
        let system = build(&plant);
        let interp = Interpreter::new(&system, 2).unwrap();
        let state = interp.initial_state().unwrap();
        match interp.max_delay(&state).unwrap() {
            None => {
                prop_assert!(interp.delayed(&state, 1000).unwrap().is_some());
            }
            Some(bound) => {
                prop_assert!(interp.delayed(&state, bound).unwrap().is_some());
                prop_assert!(interp.delayed(&state, bound + extra).unwrap().is_none());
            }
        }
    }
}
