//! # tiga-parallel — a minimal deterministic sharded work queue
//!
//! Shared by the campaign engine (`tiga fuzz --jobs`), the test-campaign
//! runner in `tiga-testing`, and the solver's intra-solve parallelism
//! (`tiga solve --jobs`).  The crate sits below every other workspace member
//! so the solver can use the queue without a dependency cycle through
//! `tiga-testing`.
//!
//! Jobs are claimed dynamically from a shared atomic cursor (work-stealing
//! style self-scheduling: a fast worker keeps taking jobs a slow worker has
//! not claimed yet), but every result is written back into the slot of the
//! job that produced it, so the output order — and therefore everything
//! aggregated from it — is independent of the number of worker threads and
//! of scheduling interleavings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "all available parallelism",
/// and the result never exceeds the number of jobs.
#[must_use]
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let wanted = if requested == 0 { hardware } else { requested };
    wanted.clamp(1, jobs.max(1))
}

/// Runs `f` over every `(index, item)` pair on `threads` workers and returns
/// the results in item order — bit-identical for any thread count.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn run_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads, n);
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let result = f(index, item);
                *results[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// Runs `f` once per *distinct key* — on the first item carrying it — and
/// returns one `(result, first)` pair per input item, in item order; `first`
/// marks the item that triggered the computation, duplicates receive a clone.
///
/// This is the request-level sharding discipline of `tiga serve` batches: a
/// campaign that submits the same game many times costs one solve, the
/// distinct work is spread over `threads` workers through [`run_indexed`],
/// and the merged output — including which submission counts as the cache
/// miss — is bit-identical for any thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_keyed<K, T, R, F>(items: Vec<(K, T)>, threads: usize, f: F) -> Vec<(R, bool)>
where
    K: Eq + Hash + Clone + Send,
    T: Send,
    R: Clone + Send,
    F: Fn(&K, T) -> R + Sync,
{
    let mut slot_of_item = Vec::with_capacity(items.len());
    let mut is_first = Vec::with_capacity(items.len());
    let mut slot_of_key: HashMap<K, usize> = HashMap::new();
    let mut firsts: Vec<(K, T)> = Vec::new();
    for (key, item) in items {
        match slot_of_key.entry(key.clone()) {
            Entry::Occupied(slot) => {
                slot_of_item.push(*slot.get());
                is_first.push(false);
            }
            Entry::Vacant(slot) => {
                slot.insert(firsts.len());
                slot_of_item.push(firsts.len());
                is_first.push(true);
                firsts.push((key, item));
            }
        }
    }
    let computed = run_indexed(firsts, threads, |_, (key, item)| f(&key, item));
    slot_of_item
        .into_iter()
        .zip(is_first)
        .map(|(slot, first)| (computed[slot].clone(), first))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(items.clone(), threads, |index, item| {
                assert_eq!(index, item);
                item * 3
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert!(run_indexed(none, 4, |_, x| x).is_empty());
        assert_eq!(run_indexed(vec![7], 4, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn run_keyed_computes_once_per_key_in_item_order() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<(u8, usize)> = vec![(3, 0), (1, 1), (3, 2), (2, 3), (1, 4), (3, 5)];
        for threads in [1, 2, 8] {
            let calls = AtomicUsize::new(0);
            let out = run_keyed(items.clone(), threads, |key, item| {
                calls.fetch_add(1, Ordering::Relaxed);
                (u32::from(*key) * 10, item)
            });
            assert_eq!(
                calls.load(Ordering::Relaxed),
                3,
                "one call per distinct key"
            );
            // Every duplicate sees the result computed for the key's FIRST
            // item, and only the first occurrence is flagged.
            assert_eq!(
                out,
                vec![
                    ((30, 0), true),
                    ((10, 1), true),
                    ((30, 0), false),
                    ((20, 3), true),
                    ((10, 1), false),
                    ((30, 0), false),
                ],
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn run_keyed_handles_empty_and_all_unique() {
        let none: Vec<(u8, u8)> = Vec::new();
        assert!(run_keyed(none, 4, |_, x| x).is_empty());
        let out = run_keyed(vec![(1u8, 10u8), (2, 20)], 4, |_, x| x);
        assert_eq!(out, vec![(10, true), (20, true)]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 0), 1);
    }
}
