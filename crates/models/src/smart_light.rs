//! The Smart Light case study (Figs. 2 and 3 of the paper).
//!
//! A touch-controlled light with three brightness levels (`Off`, `Dim`,
//! `Bright`).  Touch interactions are *controllable* (the user/tester decides
//! when to touch); the light's reactions are *uncontrollable* outputs with
//! timing uncertainty: after a touch the light has up to
//! [`OUTPUT_JITTER`] time units to decide and announce its new level.
//!
//! The model keeps the structure of the paper's Fig. 2: intermediate
//! "output pending" locations `L1`–`L6` with invariant `Tp <= 2`, a
//! reactivation threshold [`T_IDLE`] and a switching threshold [`T_SW`], and
//! a user automaton (Fig. 3) with reaction time [`T_REACT`].

use tiga_model::{
    AutomatonBuilder, ChannelId, ClockConstraint, CmpOp, EdgeBuilder, ModelError, System,
    SystemBuilder,
};

/// Idle-time threshold after which a touch reactivates the light (Fig. 2).
pub const T_IDLE: i64 = 20;
/// Switching threshold: a second touch within `T_SW` brightens, after `T_SW`
/// switches off (Fig. 2).
pub const T_SW: i64 = 4;
/// Reaction time of the user model (Fig. 3).
pub const T_REACT: i64 = 1;
/// Maximum time the light may take to produce its output after a touch.
pub const OUTPUT_JITTER: i64 = 2;

/// The test purpose of the paper's running example: the tester can always
/// drive the light to `Bright`.
pub const PURPOSE_BRIGHT: &str = "control: A<> IUT.Bright";
/// Reaching the `Dim` level.
pub const PURPOSE_DIM: &str = "control: A<> IUT.Dim";
/// Reaching `Bright` while the user model is back in its initial location.
pub const PURPOSE_BRIGHT_AND_USER_READY: &str = "control: A<> IUT.Bright and User.Init";
/// Safety purpose: the tester can keep the light from ever going `Bright` —
/// a safety game (dual greatest fixpoint): the user must avoid the
/// reactivation touch after a long idle period (`L5` may answer `bright!`)
/// and must never double-touch into `L6` (where `bright!` is forced).
pub const PURPOSE_NEVER_BRIGHT: &str = "control: A[] not IUT.Bright";

/// Channel identifiers of the light, returned by [`build_light_into`] so that
/// additional automata (the user model, custom environments) can synchronize
/// with it.
#[derive(Clone, Copy, Debug)]
pub struct LightChannels {
    /// The controllable `touch` input.
    pub touch: ChannelId,
    /// The uncontrollable `off!` output.
    pub off: ChannelId,
    /// The uncontrollable `dim!` output.
    pub dim: ChannelId,
    /// The uncontrollable `bright!` output.
    pub bright: ChannelId,
}

/// Declares the light's clocks and channels and adds the Fig. 2 automaton to
/// the builder.
///
/// # Errors
///
/// Propagates builder validation errors (duplicate names if called twice on
/// the same builder).
pub fn build_light_into(builder: &mut SystemBuilder) -> Result<LightChannels, ModelError> {
    let x = builder.clock("x")?;
    let tp = builder.clock("Tp")?;
    let touch = builder.input_channel("touch")?;
    let off_ch = builder.output_channel("off")?;
    let dim_ch = builder.output_channel("dim")?;
    let bright_ch = builder.output_channel("bright")?;

    let mut light = AutomatonBuilder::new("IUT");
    let off = light.location("Off")?;
    let dim = light.location("Dim")?;
    let bright = light.location("Bright")?;
    let l1 = light.location("L1")?;
    let l2 = light.location("L2")?;
    let l3 = light.location("L3")?;
    let l4 = light.location("L4")?;
    let l5 = light.location("L5")?;
    let l6 = light.location("L6")?;
    light.set_initial(off);

    // Output-pending locations must resolve within OUTPUT_JITTER time units.
    for pending in [l1, l2, l3, l4, l5, l6] {
        light.set_invariant(
            pending,
            vec![ClockConstraint::new(tp, CmpOp::Le, OUTPUT_JITTER)],
        );
    }

    // Off: a quick touch starts a dim cycle; a touch after a long idle period
    // reactivates with an uncontrollable choice between dim and bright.
    light.add_edge(
        EdgeBuilder::new(off, l1)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Lt, T_IDLE))
            .reset(x)
            .reset(tp),
    );
    light.add_edge(
        EdgeBuilder::new(off, l5)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, T_IDLE))
            .reset(x)
            .reset(tp),
    );
    // L1: dim is the only possible reaction; touching again escalates to a
    // bright cycle (L6).
    light.add_edge(EdgeBuilder::new(l1, dim).output(dim_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l1, l6).input(touch).reset(x));
    // L5: uncontrollable choice between bright and dim (the paper's "output
    // uncontrollability"); another touch escalates to L6.
    light.add_edge(EdgeBuilder::new(l5, bright).output(bright_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l5, dim).output(dim_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l5, l6).input(touch).reset(x));
    // L6: bright is forced (within the jitter window).
    light.add_edge(EdgeBuilder::new(l6, bright).output(bright_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l6, l6).input(touch).reset(x));
    // Dim: a quick second touch brightens (via L6), a slow one switches off
    // (via L4).
    light.add_edge(
        EdgeBuilder::new(dim, l6)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Lt, T_SW))
            .reset(x)
            .reset(tp),
    );
    light.add_edge(
        EdgeBuilder::new(dim, l4)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, T_SW))
            .reset(x)
            .reset(tp),
    );
    light.add_edge(EdgeBuilder::new(l4, off).output(off_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l4, l4).input(touch).reset(x));
    // Bright: a quick touch dims (via L2), a slow one switches off (via L3).
    light.add_edge(
        EdgeBuilder::new(bright, l2)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Lt, T_SW))
            .reset(x)
            .reset(tp),
    );
    light.add_edge(
        EdgeBuilder::new(bright, l3)
            .input(touch)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, T_SW))
            .reset(x)
            .reset(tp),
    );
    light.add_edge(EdgeBuilder::new(l2, dim).output(dim_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l2, l2).input(touch).reset(x));
    light.add_edge(EdgeBuilder::new(l3, off).output(off_ch).reset(x));
    light.add_edge(EdgeBuilder::new(l3, l3).input(touch).reset(x));

    builder.add_automaton(light.build()?)?;
    Ok(LightChannels {
        touch,
        off: off_ch,
        dim: dim_ch,
        bright: bright_ch,
    })
}

/// Adds the Fig. 3 user automaton to a builder that already contains the
/// light (see [`build_light_into`]).
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn build_user_into(
    builder: &mut SystemBuilder,
    channels: LightChannels,
) -> Result<(), ModelError> {
    let z = builder.clock("z")?;
    let mut user = AutomatonBuilder::new("User");
    let init = user.location("Init")?;
    let work = user.location("Work")?;
    user.set_initial(init);
    // The user may touch whenever at least T_REACT has elapsed since its last
    // interaction.
    user.add_edge(
        EdgeBuilder::new(init, work)
            .output(channels.touch)
            .guard_clock(ClockConstraint::new(z, CmpOp::Ge, T_REACT))
            .reset(z),
    );
    user.add_edge(
        EdgeBuilder::new(work, work)
            .output(channels.touch)
            .guard_clock(ClockConstraint::new(z, CmpOp::Ge, T_REACT))
            .reset(z),
    );
    // The user observes every light output (input-enabled environment).
    for ch in [channels.off, channels.dim, channels.bright] {
        user.add_edge(EdgeBuilder::new(work, init).input(ch).reset(z));
        user.add_edge(EdgeBuilder::new(init, init).input(ch).reset(z));
    }
    builder.add_automaton(user.build()?)?;
    Ok(())
}

/// The plant model alone (the light of Fig. 2), used as the tioco
/// specification and as the basis for simulated implementations.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates builder validation.
pub fn plant() -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new("smart-light-plant");
    build_light_into(&mut builder)?;
    builder.build()
}

/// The closed game product: light (Fig. 2) composed with the user model
/// (Fig. 3).  Strategies are synthesized on this system.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates builder validation.
pub fn product() -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new("smart-light");
    let channels = build_light_into(&mut builder)?;
    build_user_into(&mut builder, channels)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_solver::{solve_jacobi, SolveOptions};
    use tiga_tctl::TestPurpose;

    #[test]
    fn models_build_and_have_expected_structure() {
        let plant = plant().unwrap();
        assert_eq!(plant.automata().len(), 1);
        assert_eq!(plant.clocks().len(), 2);
        assert_eq!(plant.channels().len(), 4);
        // Fig. 2 has the three levels plus six intermediate locations.
        assert_eq!(plant.automata()[0].locations().len(), 9);
        let product = product().unwrap();
        assert_eq!(product.automata().len(), 2);
        assert_eq!(product.clocks().len(), 3);
        assert!(product.location_by_qualified_name("IUT.Bright").is_some());
        assert!(product.location_by_qualified_name("User.Work").is_some());
    }

    #[test]
    fn bright_purpose_is_enforceable() {
        let product = product().unwrap();
        let tp = TestPurpose::parse(PURPOSE_BRIGHT, &product).unwrap();
        let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
        assert!(
            solution.winning_from_initial,
            "A<> IUT.Bright must be winnable"
        );
        assert!(solution.strategy.is_some());
    }

    #[test]
    fn dim_purpose_is_enforceable() {
        let product = product().unwrap();
        let tp = TestPurpose::parse(PURPOSE_DIM, &product).unwrap();
        let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
        assert!(
            solution.winning_from_initial,
            "A<> IUT.Dim must be winnable"
        );
    }

    #[test]
    fn combined_purpose_is_enforceable() {
        let product = product().unwrap();
        let tp = TestPurpose::parse(PURPOSE_BRIGHT_AND_USER_READY, &product).unwrap();
        let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
    }

    #[test]
    fn bright_is_avoidable() {
        // The safety game `A[] not IUT.Bright` is winning: the user can
        // withhold the reactivation and escalation touches forever.
        let product = product().unwrap();
        let tp = TestPurpose::parse(PURPOSE_NEVER_BRIGHT, &product).unwrap();
        let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
        assert!(solution.strategy.is_some(), "a safe controller exists");
    }
}
