//! A timed coffee-machine model, used as an additional, self-contained
//! example of game-based test generation (it is not part of the paper's
//! evaluation but exercises the same ingredients: uncontrollable outputs,
//! timing uncertainty, and deadlines).
//!
//! Behaviour:
//!
//! * after `coin?`, the machine waits for a selection; if no button is
//!   pressed within [`SELECTION_TIMEOUT`] time units it refunds the coin
//!   (`refund!`) within [`REACT_TIME`] further time units;
//! * after `button?`, it brews and eventually serves `coffee!` within
//!   `[`[`BREW_MIN`]`, `[`BREW_MAX`]`]` time units — the exact serving moment
//!   is uncontrollable.

use tiga_model::{
    AutomatonBuilder, ChannelId, ClockConstraint, CmpOp, EdgeBuilder, ModelError, System,
    SystemBuilder,
};

/// Time after which an unused coin is refunded.
pub const SELECTION_TIMEOUT: i64 = 10;
/// Maximum reaction time for the refund.
pub const REACT_TIME: i64 = 2;
/// Earliest serving time after the button is pressed.
pub const BREW_MIN: i64 = 3;
/// Latest serving time after the button is pressed.
pub const BREW_MAX: i64 = 5;

/// Test purpose: a coffee can always be obtained.
pub const PURPOSE_COFFEE: &str = "control: A<> Machine.Served";
/// Test purpose: the refund path can always be exercised.
pub const PURPOSE_REFUND: &str = "control: A<> Machine.Refunded";
/// Safety purpose: the tester can keep the machine from ever refunding —
/// winning by pressing the button before the selection timeout whenever a
/// coin is in (a safety game: the dual greatest fixpoint).
pub const PURPOSE_NO_REFUND: &str = "control: A[] not Machine.Refunded";

/// Channels of the machine, for callers that add custom environments.
#[derive(Clone, Copy, Debug)]
pub struct MachineChannels {
    /// Controllable coin insertion.
    pub coin: ChannelId,
    /// Controllable button press.
    pub button: ChannelId,
    /// Uncontrollable serving of the coffee.
    pub coffee: ChannelId,
    /// Uncontrollable refund.
    pub refund: ChannelId,
}

/// Adds the machine automaton (the plant) to a builder.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn build_machine_into(builder: &mut SystemBuilder) -> Result<MachineChannels, ModelError> {
    let x = builder.clock("x")?;
    let coin = builder.input_channel("coin")?;
    let button = builder.input_channel("button")?;
    let coffee = builder.output_channel("coffee")?;
    let refund = builder.output_channel("refund")?;

    let mut machine = AutomatonBuilder::new("Machine");
    let idle = machine.location("Idle")?;
    let selecting = machine.location("Selecting")?;
    let brewing = machine.location("Brewing")?;
    let served = machine.location("Served")?;
    let refunded = machine.location("Refunded")?;
    machine.set_initial(idle);
    machine.set_invariant(
        selecting,
        vec![ClockConstraint::new(
            x,
            CmpOp::Le,
            SELECTION_TIMEOUT + REACT_TIME,
        )],
    );
    machine.set_invariant(brewing, vec![ClockConstraint::new(x, CmpOp::Le, BREW_MAX)]);

    machine.add_edge(EdgeBuilder::new(idle, selecting).input(coin).reset(x));
    machine.add_edge(
        EdgeBuilder::new(selecting, brewing)
            .input(button)
            .guard_clock(ClockConstraint::new(x, CmpOp::Lt, SELECTION_TIMEOUT))
            .reset(x),
    );
    machine.add_edge(
        EdgeBuilder::new(selecting, refunded)
            .output(refund)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, SELECTION_TIMEOUT))
            .reset(x),
    );
    machine.add_edge(
        EdgeBuilder::new(brewing, served)
            .output(coffee)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, BREW_MIN))
            .reset(x),
    );
    // Served / Refunded accept a new coin (the machine is reusable).
    machine.add_edge(EdgeBuilder::new(served, selecting).input(coin).reset(x));
    machine.add_edge(EdgeBuilder::new(refunded, selecting).input(coin).reset(x));

    builder.add_automaton(machine.build()?)?;
    Ok(MachineChannels {
        coin,
        button,
        coffee,
        refund,
    })
}

/// The plant model alone.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn plant() -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new("coffee-machine-plant");
    build_machine_into(&mut builder)?;
    builder.build()
}

/// The closed game product: machine composed with a customer model that may
/// insert coins, press the button and observe the outputs.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn product() -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new("coffee-machine");
    let channels = build_machine_into(&mut builder)?;
    let z = builder.clock("z")?;
    let mut customer = AutomatonBuilder::new("Customer");
    let c = customer.location("C")?;
    customer.set_initial(c);
    customer.add_edge(
        EdgeBuilder::new(c, c)
            .output(channels.coin)
            .guard_clock(ClockConstraint::new(z, CmpOp::Ge, 1))
            .reset(z),
    );
    customer.add_edge(
        EdgeBuilder::new(c, c)
            .output(channels.button)
            .guard_clock(ClockConstraint::new(z, CmpOp::Ge, 1))
            .reset(z),
    );
    customer.add_edge(EdgeBuilder::new(c, c).input(channels.coffee).reset(z));
    customer.add_edge(EdgeBuilder::new(c, c).input(channels.refund).reset(z));
    builder.add_automaton(customer.build()?)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_solver::{solve_jacobi, SolveOptions};
    use tiga_tctl::TestPurpose;

    #[test]
    fn models_build() {
        let plant = plant().unwrap();
        assert_eq!(plant.automata().len(), 1);
        assert_eq!(plant.channels().len(), 4);
        let product = product().unwrap();
        assert_eq!(product.automata().len(), 2);
        assert_eq!(product.clocks().len(), 2);
    }

    #[test]
    fn both_purposes_are_enforceable() {
        let product = product().unwrap();
        for purpose in [PURPOSE_COFFEE, PURPOSE_REFUND] {
            let tp = TestPurpose::parse(purpose, &product).unwrap();
            let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
            assert!(solution.winning_from_initial, "{purpose} must be winnable");
        }
    }

    #[test]
    fn refunds_are_avoidable() {
        // The safety game `A[] not Machine.Refunded` is winning: once a
        // coin is in, pressing the button before the selection timeout
        // forecloses the refund edge forever.
        let product = product().unwrap();
        let tp = TestPurpose::parse(PURPOSE_NO_REFUND, &product).unwrap();
        let solution = solve_jacobi(&product, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
        assert!(solution.strategy.is_some(), "a safe controller exists");
    }
}
