//! The Leader Election Protocol (LEP) case study of the paper's Section 4.
//!
//! The protocol elects the node with the lowest address as the leader by
//! message passing.  Following the paper, the model has three parts:
//!
//! * **IUT** — one arbitrary protocol node as the plant (a TIOGA): it
//!   receives messages, forwards strictly better (lower) addresses, and
//!   announces a `timeout!` after waiting [`T_WAIT`] time units (with up to
//!   [`PROC_TIME`] of timing uncertainty) without useful information —
//!   uncontrollable outputs with timing uncertainty;
//! * **Buffer** — a bounded message buffer of capacity `n` (the `inUse[i]`
//!   array of the paper's TP2/TP3);
//! * **Env** — the chaotic environment consisting of all other nodes, which
//!   may inject messages with arbitrary addresses and absorbs the IUT's
//!   announcements.
//!
//! The model is parametric in the number of nodes `n`: the buffer has `n`
//! slots and message addresses range over `0 .. n-1` with the IUT holding the
//! worst address `n-1` (the paper bounds the distance between nodes by
//! `n-1`).
//!
//! ### Substitution note
//!
//! The paper's exact UPPAAL model is not published; this reconstruction keeps
//! the documented ingredients (uncontrollable `timeout!` within a time frame,
//! `betterInfo`/`forward` bookkeeping, a capacity-`n` buffer with `inUse[]`,
//! chaotic other nodes) so that the three test purposes TP1–TP3 are
//! well-defined and the state space grows with `n` in the same qualitative
//! way as Table 1.  Message values are chosen by the environment at delivery
//! time (value-passing is expanded into per-value channels `deliver0`,
//! `deliver1`, …), which keeps the implementation black-box testable.

use tiga_model::{
    AutomatonBuilder, ChannelId, ClockConstraint, CmpOp, EdgeBuilder, Expr, ModelError, System,
    SystemBuilder,
};

/// Time a node waits for useful information before announcing a timeout.
pub const T_WAIT: i64 = 10;
/// Processing deadline (and timing uncertainty window) for reactions.
pub const PROC_TIME: i64 = 2;
/// Minimum spacing between injections of the chaotic environment.
pub const ENV_PACE: i64 = 1;

/// Configuration of the parametric LEP model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LepConfig {
    /// Number of protocol nodes (buffer capacity and address range).
    pub nodes: usize,
    /// Whether the buffer stores the address carried by every message
    /// (the *detailed* variant).  The abstract variant only tracks slot
    /// occupancy and lets the chaotic environment choose the delivered
    /// address, which keeps the state space small; the detailed variant
    /// restores the explosive growth of the paper's Table 1.
    pub track_values: bool,
}

impl LepConfig {
    /// Creates the abstract-buffer configuration with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` (the protocol needs at least two nodes).
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "the protocol needs at least two nodes");
        LepConfig {
            nodes,
            track_values: false,
        }
    }

    /// Creates the detailed configuration (per-slot message addresses).
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    #[must_use]
    pub fn detailed(nodes: usize) -> Self {
        LepConfig {
            track_values: true,
            ..LepConfig::new(nodes)
        }
    }

    /// The paper's TP1: the IUT has seen better information and is about to
    /// forward it.
    #[must_use]
    pub fn tp1(&self) -> String {
        "control: A<> (IUT.betterInfo == 1) and IUT.forward".to_string()
    }

    /// The paper's TP2: every buffer slot is in use.
    #[must_use]
    pub fn tp2(&self) -> String {
        "control: A<> forall (i: BufferId) (inUse[i] == 1)".to_string()
    }

    /// The paper's TP3: every buffer slot is in use and the IUT is idle.
    #[must_use]
    pub fn tp3(&self) -> String {
        "control: A<> forall (i: BufferId) (inUse[i] == 1) and IUT.idle".to_string()
    }

    /// An avoid (safety) purpose: keep the IUT out of the leader role.
    ///
    /// The tester wins by delivering a better address before the election
    /// timeout fires: `timeout!` only leaves `waiting`, so once the IUT has
    /// forwarded the better address and returned to `idle` it can never
    /// become leader.  Enforceable for every node count `>= 2`, in both the
    /// abstract and the detailed configuration.
    #[must_use]
    pub fn tp4(&self) -> String {
        "control: A[] not IUT.leader".to_string()
    }

    /// All four purposes with their names: TP1–TP3 in the order of Table 1,
    /// then the [`LepConfig::tp4`] avoid purpose.
    #[must_use]
    pub fn purposes(&self) -> Vec<(&'static str, String)> {
        vec![
            ("TP1", self.tp1()),
            ("TP2", self.tp2()),
            ("TP3", self.tp3()),
            ("TP4", self.tp4()),
        ]
    }
}

struct LepChannels {
    push: ChannelId,
    deliver: Vec<ChannelId>,
    send: ChannelId,
    timeout: ChannelId,
}

fn declare_shared(
    builder: &mut SystemBuilder,
    config: LepConfig,
) -> Result<LepChannels, ModelError> {
    let n = config.nodes;
    // Constants first so that test purposes can reference them.
    builder.constant("N", n as i64)?;
    builder.constant("BufferId", n as i64)?;
    builder.int_array("inUse", n, 0, 1, 0)?;
    builder.int_var("betterInfo", 0, 1, 0)?;
    builder.int_var("bestSeen", 0, (n - 1) as i64, (n - 1) as i64)?;
    builder.int_var("curMsg", 0, (n - 1) as i64, (n - 1) as i64)?;
    if config.track_values {
        builder.int_array("slotVal", n, 0, (n - 1) as i64, 0)?;
    }

    let push = builder.input_channel("push")?;
    let mut deliver = Vec::with_capacity(n);
    for k in 0..n {
        deliver.push(builder.input_channel(&format!("deliver{k}"))?);
    }
    let send = builder.output_channel("send")?;
    let timeout = builder.output_channel("timeout")?;
    Ok(LepChannels {
        push,
        deliver,
        send,
        timeout,
    })
}

fn build_iut(
    builder: &mut SystemBuilder,
    channels: &LepChannels,
    _config: LepConfig,
) -> Result<(), ModelError> {
    let x = builder.clock("x")?;
    let tp = builder.clock("Tp")?;
    let vars = builder.vars();
    let better_info = vars.lookup("betterInfo").expect("declared");
    let best_seen = vars.lookup("bestSeen").expect("declared");
    let cur_msg = vars.lookup("curMsg").expect("declared");

    let mut iut = AutomatonBuilder::new("IUT");
    let waiting = iut.location("waiting")?;
    let forward = iut.location("forward")?;
    let idle = iut.location("idle")?;
    let leader = iut.location("leader")?;
    iut.set_initial(waiting);
    iut.set_invariant(
        waiting,
        vec![ClockConstraint::new(x, CmpOp::Le, T_WAIT + PROC_TIME)],
    );
    iut.set_invariant(
        forward,
        vec![ClockConstraint::new(tp, CmpOp::Le, PROC_TIME)],
    );

    // Receiving a message: the per-value channels record the received
    // address.  A strictly better (lower) address is remembered and will be
    // forwarded; anything else is discarded on the spot.  (The reaction is
    // folded into the receiving edge so that the implementation state stays
    // observable through its inputs and outputs — a standard testability
    // assumption.)
    for (k, ch) in channels.deliver.iter().enumerate() {
        let value = Expr::constant(k as i64);
        for source in [waiting, idle, leader] {
            // Better information: move to `forward` and remember it.
            iut.add_edge(
                EdgeBuilder::new(source, forward)
                    .input(*ch)
                    .when(value.clone().lt(Expr::var(best_seen)))
                    .set(cur_msg, value.clone())
                    .set(better_info, Expr::constant(1))
                    .set(best_seen, value.clone())
                    .reset(tp),
            );
            // Useless information: stay (the timeout clock keeps running).
            iut.add_edge(
                EdgeBuilder::new(source, source)
                    .input(*ch)
                    .when(value.clone().ge(Expr::var(best_seen)))
                    .set(cur_msg, value.clone()),
            );
        }
        // While forwarding, further deliveries are absorbed.
        iut.add_edge(
            EdgeBuilder::new(forward, forward)
                .input(*ch)
                .set(cur_msg, value.clone()),
        );
    }
    // Forwarding the better information into the network (buffer), within
    // PROC_TIME of having received it (uncontrollable instant).
    iut.add_edge(
        EdgeBuilder::new(forward, idle)
            .output(channels.send)
            .reset(x),
    );
    // Timeout: without better information the node eventually claims
    // leadership, at an uncontrollable instant in [T_WAIT, T_WAIT+PROC_TIME].
    iut.add_edge(
        EdgeBuilder::new(waiting, leader)
            .output(channels.timeout)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, T_WAIT)),
    );

    builder.add_automaton(iut.build()?)?;
    Ok(())
}

fn build_buffer(
    builder: &mut SystemBuilder,
    channels: &LepChannels,
    config: LepConfig,
) -> Result<(), ModelError> {
    let n = config.nodes;
    let vars = builder.vars();
    let in_use = vars.lookup("inUse").expect("declared");
    let best_seen = vars.lookup("bestSeen").expect("declared");
    let slot_val = if config.track_values {
        Some(vars.lookup("slotVal").expect("declared"))
    } else {
        None
    };

    let mut buffer = AutomatonBuilder::new("Buffer");
    let b = buffer.location("B")?;
    buffer.set_initial(b);

    // A slot is filled in "stack" order: the first free slot after the used
    // prefix.  Both the environment's `push` and the IUT's `send` occupy a
    // slot; when the buffer is full, messages are dropped.
    for (channel, from_env) in [(channels.push, true), (channels.send, false)] {
        for i in 0..n {
            let mut guard = Expr::index(in_use, Expr::constant(i as i64)).eq(Expr::constant(0));
            if i > 0 {
                guard = guard
                    .and(Expr::index(in_use, Expr::constant((i - 1) as i64)).eq(Expr::constant(1)));
            }
            match slot_val {
                None => {
                    buffer.add_edge(
                        EdgeBuilder::new(b, b)
                            .input(channel)
                            .when(guard)
                            .set_element(in_use, Expr::constant(i as i64), Expr::constant(1)),
                    );
                }
                Some(slot_val) if from_env => {
                    // Detailed variant: the (chaotic) environment chooses the
                    // injected address at push time.
                    for k in 0..n {
                        buffer.add_edge(
                            EdgeBuilder::new(b, b)
                                .input(channel)
                                .when(guard.clone())
                                .set_element(in_use, Expr::constant(i as i64), Expr::constant(1))
                                .set_element(
                                    slot_val,
                                    Expr::constant(i as i64),
                                    Expr::constant(k as i64),
                                ),
                        );
                    }
                }
                Some(slot_val) => {
                    // The IUT forwards its best-seen address.
                    buffer.add_edge(
                        EdgeBuilder::new(b, b)
                            .input(channel)
                            .when(guard)
                            .set_element(in_use, Expr::constant(i as i64), Expr::constant(1))
                            .set_element(slot_val, Expr::constant(i as i64), Expr::var(best_seen)),
                    );
                }
            }
        }
        // Overflow: drop.
        let full = Expr::index(in_use, Expr::constant((n - 1) as i64)).eq(Expr::constant(1));
        buffer.add_edge(EdgeBuilder::new(b, b).input(channel).when(full));
    }

    // Delivery: the last used slot is handed to the IUT.  In the abstract
    // variant the delivered address is chosen by the chaotic environment; in
    // the detailed variant it is the stored address.
    for i in 0..n {
        let mut guard = Expr::index(in_use, Expr::constant(i as i64)).eq(Expr::constant(1));
        if i + 1 < n {
            guard = guard
                .and(Expr::index(in_use, Expr::constant((i + 1) as i64)).eq(Expr::constant(0)));
        }
        for (k, ch) in channels.deliver.iter().enumerate() {
            let mut edge_guard = guard.clone();
            if let Some(slot_val) = slot_val {
                edge_guard = edge_guard.and(
                    Expr::index(slot_val, Expr::constant(i as i64)).eq(Expr::constant(k as i64)),
                );
            }
            let mut edge = EdgeBuilder::new(b, b)
                .output(*ch)
                .when(edge_guard)
                .set_element(in_use, Expr::constant(i as i64), Expr::constant(0));
            if let Some(slot_val) = slot_val {
                // Normalize freed slots so equivalent buffer contents collapse
                // onto the same discrete state.
                edge = edge.set_element(slot_val, Expr::constant(i as i64), Expr::constant(0));
            }
            buffer.add_edge(edge);
        }
    }

    builder.add_automaton(buffer.build()?)?;
    Ok(())
}

fn build_env(builder: &mut SystemBuilder, channels: &LepChannels) -> Result<(), ModelError> {
    let z = builder.clock("z")?;
    let mut env = AutomatonBuilder::new("Env");
    let e = env.location("E")?;
    env.set_initial(e);
    // Other nodes inject messages into the buffer, at most once per time unit.
    env.add_edge(
        EdgeBuilder::new(e, e)
            .output(channels.push)
            .guard_clock(ClockConstraint::new(z, CmpOp::Ge, ENV_PACE))
            .reset(z),
    );
    // The environment absorbs the IUT's announcements.
    env.add_edge(EdgeBuilder::new(e, e).input(channels.timeout));
    builder.add_automaton(env.build()?)?;
    Ok(())
}

/// The closed game product for `n` nodes: IUT ∥ Buffer ∥ Env.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn product(config: LepConfig) -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new(&format!("lep-{}", config.nodes));
    let channels = declare_shared(&mut builder, config)?;
    build_iut(&mut builder, &channels, config)?;
    build_buffer(&mut builder, &channels, config)?;
    build_env(&mut builder, &channels)?;
    builder.build()
}

/// The plant (IUT node) alone, used as the tioco specification and as the
/// basis for simulated implementations.
///
/// # Errors
///
/// Propagates builder validation errors.
pub fn plant(config: LepConfig) -> Result<System, ModelError> {
    let mut builder = SystemBuilder::new(&format!("lep-{}-plant", config.nodes));
    let channels = declare_shared(&mut builder, config)?;
    build_iut(&mut builder, &channels, config)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_solver::{solve_jacobi, SolveOptions};
    use tiga_tctl::TestPurpose;

    #[test]
    fn models_build_for_various_sizes() {
        for n in [2, 3, 4, 5] {
            let config = LepConfig::new(n);
            let sys = product(config).unwrap();
            assert_eq!(sys.automata().len(), 3);
            assert_eq!(sys.clocks().len(), 3);
            // push + n delivers + send + timeout.
            assert_eq!(sys.channels().len(), n + 3);
            let plant = plant(config).unwrap();
            assert_eq!(plant.automata().len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn too_small_configuration_panics() {
        let _ = LepConfig::new(1);
    }

    #[test]
    fn all_purposes_parse() {
        let config = LepConfig::new(3);
        let sys = product(config).unwrap();
        for (_, text) in config.purposes() {
            TestPurpose::parse(&text, &sys).unwrap();
        }
    }

    #[test]
    fn tp1_is_enforceable_for_three_nodes() {
        let config = LepConfig::new(3);
        let sys = product(config).unwrap();
        let tp = TestPurpose::parse(&config.tp1(), &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial, "TP1 must be winnable");
    }

    #[test]
    fn tp2_is_enforceable_for_three_nodes() {
        let config = LepConfig::new(3);
        let sys = product(config).unwrap();
        let tp = TestPurpose::parse(&config.tp2(), &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial, "TP2 must be winnable");
    }

    #[test]
    fn tp3_is_enforceable_for_three_nodes() {
        let config = LepConfig::new(3);
        let sys = product(config).unwrap();
        let tp = TestPurpose::parse(&config.tp3(), &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial, "TP3 must be winnable");
    }

    #[test]
    fn tp4_avoidance_is_enforceable_for_three_nodes() {
        let config = LepConfig::new(3);
        let sys = product(config).unwrap();
        let tp = TestPurpose::parse(&config.tp4(), &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(
            solution.winning_from_initial,
            "TP4 (avoid leadership) must be winnable"
        );
    }

    #[test]
    fn detailed_variant_builds_and_is_enforceable() {
        let config = LepConfig::detailed(3);
        let sys = product(config).unwrap();
        assert!(sys.vars().lookup("slotVal").is_some());
        for (name, text) in config.purposes() {
            let tp = TestPurpose::parse(&text, &sys).unwrap();
            let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
            assert!(
                solution.winning_from_initial,
                "{name} must be winnable (detailed)"
            );
        }
    }

    #[test]
    fn detailed_variant_explores_more_states() {
        let abstract_cfg = LepConfig::new(3);
        let detailed_cfg = LepConfig::detailed(3);
        let mut states = Vec::new();
        for cfg in [abstract_cfg, detailed_cfg] {
            let sys = product(cfg).unwrap();
            let tp = TestPurpose::parse(&cfg.tp2(), &sys).unwrap();
            let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
            states.push(solution.stats().discrete_states);
        }
        assert!(
            states[1] > states[0],
            "tracking message values must enlarge the state space: {states:?}"
        );
    }

    #[test]
    fn strategy_generation_scales_with_n() {
        // The explored graph grows with the number of nodes (Table 1 trend).
        let mut sizes = Vec::new();
        for n in [2, 3] {
            let config = LepConfig::new(n);
            let sys = product(config).unwrap();
            let tp = TestPurpose::parse(&config.tp2(), &sys).unwrap();
            let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
            sizes.push(solution.stats().discrete_states);
        }
        assert!(sizes[0] < sizes[1], "sizes: {sizes:?}");
    }
}
