//! # tiga-models — case-study models from David et al., DATE 2008
//!
//! This crate provides ready-made [`tiga_model::System`]s for the paper's
//! case studies and one additional example:
//!
//! * [`smart_light`] — the running example (Figs. 2 and 3): a touch-controlled
//!   light with uncontrollable, timing-uncertain reactions;
//! * [`leader_election`] — the Leader Election Protocol of Section 4,
//!   parametric in the number of nodes, with the paper's test purposes
//!   TP1–TP3 (Table 1);
//! * [`coffee_machine`] — an extra self-contained example used by the
//!   quickstart and documentation.
//!
//! Each module exposes a `plant()` (the specification / implementation basis)
//! and a `product()` (the closed plant∥environment game) together with the
//! relevant test-purpose strings.
//!
//! # Example
//!
//! ```
//! use tiga_models::smart_light;
//! use tiga_solver::{solve_jacobi, SolveOptions};
//! use tiga_tctl::TestPurpose;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let product = smart_light::product()?;
//! let purpose = TestPurpose::parse(smart_light::PURPOSE_BRIGHT, &product)?;
//! let solution = solve_jacobi(&product, &purpose, &SolveOptions::default())?;
//! assert!(solution.winning_from_initial);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coffee_machine;
pub mod leader_election;
pub mod smart_light;
