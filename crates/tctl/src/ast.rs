//! Resolved test purposes and their evaluation over discrete states.

use crate::error::TctlError;
use tiga_model::{AutomatonId, ConcreteState, DiscreteState, Expr, LocationId, System};

/// The path quantifier of a test purpose.
///
/// The paper uses reachability purposes (`control: A<> φ`): *whatever the
/// plant does, the tester can force the game into a φ-state*.  Safety
/// purposes (`control: A[] φ`) are supported as an extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathQuantifier {
    /// `A<> φ` — the tester can enforce eventually reaching φ.
    Reachability,
    /// `A[] φ` — the tester can enforce always staying inside φ.
    Safety,
}

/// A state predicate over locations and discrete variables.
///
/// Clock constraints are deliberately not part of test purposes in this
/// reproduction (the paper's purposes are location/variable predicates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatePredicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// The given automaton is in the given location.
    Location(AutomatonId, LocationId),
    /// An integer expression over discrete variables, interpreted as a
    /// boolean (non-zero is true).
    Expr(Expr),
    /// Conjunction.
    And(Box<StatePredicate>, Box<StatePredicate>),
    /// Disjunction.
    Or(Box<StatePredicate>, Box<StatePredicate>),
    /// Negation.
    Not(Box<StatePredicate>),
}

impl StatePredicate {
    /// Conjunction helper that simplifies trivial cases.
    #[must_use]
    pub fn and(self, other: StatePredicate) -> StatePredicate {
        match (self, other) {
            (StatePredicate::True, p) | (p, StatePredicate::True) => p,
            (StatePredicate::False, _) | (_, StatePredicate::False) => StatePredicate::False,
            (a, b) => StatePredicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction helper that simplifies trivial cases.
    #[must_use]
    pub fn or(self, other: StatePredicate) -> StatePredicate {
        match (self, other) {
            (StatePredicate::False, p) | (p, StatePredicate::False) => p,
            (StatePredicate::True, _) | (_, StatePredicate::True) => StatePredicate::True,
            (a, b) => StatePredicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation helper.
    #[must_use]
    pub fn negated(self) -> StatePredicate {
        match self {
            StatePredicate::True => StatePredicate::False,
            StatePredicate::False => StatePredicate::True,
            StatePredicate::Not(inner) => *inner,
            p => StatePredicate::Not(Box::new(p)),
        }
    }

    fn eval(
        &self,
        system: &System,
        locations: &[LocationId],
        vars: &[i64],
    ) -> Result<bool, TctlError> {
        match self {
            StatePredicate::True => Ok(true),
            StatePredicate::False => Ok(false),
            StatePredicate::Location(aut, loc) => Ok(locations[aut.index()] == *loc),
            StatePredicate::Expr(e) => e
                .eval_bool(system.vars(), vars)
                .map_err(|e| TctlError::Eval(e.to_string())),
            StatePredicate::And(a, b) => {
                Ok(a.eval(system, locations, vars)? && b.eval(system, locations, vars)?)
            }
            StatePredicate::Or(a, b) => {
                Ok(a.eval(system, locations, vars)? || b.eval(system, locations, vars)?)
            }
            StatePredicate::Not(a) => Ok(!a.eval(system, locations, vars)?),
        }
    }

    /// Evaluates the predicate in a symbolic (discrete) state.
    ///
    /// # Errors
    ///
    /// Returns [`TctlError::Eval`] if a contained expression cannot be
    /// evaluated (e.g. array index out of bounds).
    pub fn holds(&self, system: &System, state: &DiscreteState) -> Result<bool, TctlError> {
        self.eval(system, &state.locations, &state.vars)
    }

    /// Evaluates the predicate in a concrete state (clock values are ignored,
    /// only locations and variables matter).
    ///
    /// # Errors
    ///
    /// Returns [`TctlError::Eval`] if a contained expression cannot be
    /// evaluated.
    pub fn holds_concrete(
        &self,
        system: &System,
        state: &ConcreteState,
    ) -> Result<bool, TctlError> {
        self.eval(system, &state.locations, &state.vars)
    }

    /// Renders the predicate using the system's names.
    #[must_use]
    pub fn display<'a>(&'a self, system: &'a System) -> DisplayPredicate<'a> {
        DisplayPredicate { pred: self, system }
    }
}

/// System-free rendering, for logs and `Debug`-adjacent contexts where no
/// [`System`] is at hand: locations print as positional `@<automaton>.<location>`
/// indices and variables as `v<index>` (`v<index>[...]` for array elements).
/// Use [`StatePredicate::display`] for the name-resolved, parseable form.
impl std::fmt::Display for StatePredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn expr(e: &Expr, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            fn bin(
                a: &Expr,
                op: &str,
                b: &Expr,
                f: &mut std::fmt::Formatter<'_>,
            ) -> std::fmt::Result {
                write!(f, "(")?;
                expr(a, f)?;
                write!(f, " {op} ")?;
                expr(b, f)?;
                write!(f, ")")
            }
            match e {
                Expr::Const(v) => write!(f, "{v}"),
                Expr::Var(v) => write!(f, "v{}", v.index()),
                Expr::Index(v, i) => {
                    write!(f, "v{}[", v.index())?;
                    expr(i, f)?;
                    write!(f, "]")
                }
                Expr::Neg(e) => {
                    write!(f, "-(")?;
                    expr(e, f)?;
                    write!(f, ")")
                }
                Expr::Add(a, b) => bin(a, "+", b, f),
                Expr::Sub(a, b) => bin(a, "-", b, f),
                Expr::Mul(a, b) => bin(a, "*", b, f),
                Expr::Div(a, b) => bin(a, "/", b, f),
                Expr::Mod(a, b) => bin(a, "%", b, f),
                Expr::Cmp(op, a, b) => bin(a, &op.to_string(), b, f),
                Expr::And(a, b) => bin(a, "&&", b, f),
                Expr::Or(a, b) => bin(a, "||", b, f),
                Expr::Not(e) => {
                    write!(f, "!(")?;
                    expr(e, f)?;
                    write!(f, ")")
                }
                Expr::Ite(c, t, e) => {
                    write!(f, "(")?;
                    expr(c, f)?;
                    write!(f, " ? ")?;
                    expr(t, f)?;
                    write!(f, " : ")?;
                    expr(e, f)?;
                    write!(f, ")")
                }
            }
        }
        match self {
            StatePredicate::True => write!(f, "true"),
            StatePredicate::False => write!(f, "false"),
            StatePredicate::Location(a, l) => write!(f, "@{}.{}", a.index(), l.index()),
            StatePredicate::Expr(e) => expr(e, f),
            StatePredicate::And(a, b) => write!(f, "({a} and {b})"),
            StatePredicate::Or(a, b) => write!(f, "({a} or {b})"),
            StatePredicate::Not(a) => write!(f, "not {a}"),
        }
    }
}

/// Helper returned by [`StatePredicate::display`].
pub struct DisplayPredicate<'a> {
    pred: &'a StatePredicate,
    system: &'a System,
}

impl std::fmt::Display for DisplayPredicate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn go(
            p: &StatePredicate,
            system: &System,
            f: &mut std::fmt::Formatter<'_>,
        ) -> std::fmt::Result {
            match p {
                StatePredicate::True => write!(f, "true"),
                StatePredicate::False => write!(f, "false"),
                StatePredicate::Location(a, l) => {
                    let aut = system.automaton(*a);
                    write!(f, "{}.{}", aut.name(), aut.location(*l).name)
                }
                StatePredicate::Expr(e) => write!(f, "{}", e.display(system.vars())),
                StatePredicate::And(a, b) => {
                    write!(f, "(")?;
                    go(a, system, f)?;
                    write!(f, " and ")?;
                    go(b, system, f)?;
                    write!(f, ")")
                }
                StatePredicate::Or(a, b) => {
                    write!(f, "(")?;
                    go(a, system, f)?;
                    write!(f, " or ")?;
                    go(b, system, f)?;
                    write!(f, ")")
                }
                StatePredicate::Not(a) => {
                    write!(f, "not ")?;
                    go(a, system, f)
                }
            }
        }
        go(self.pred, self.system, f)
    }
}

/// A parsed and resolved test purpose.
///
/// Produced by [`TestPurpose::parse`]; the solver turns the predicate into a
/// set of goal (or safe) states and synthesizes a winning strategy for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPurpose {
    /// Reachability (`A<>`) or safety (`A[]`).
    pub quantifier: PathQuantifier,
    /// The state predicate.
    pub predicate: StatePredicate,
    /// Optional time bound `T` in model time units (weak: deadline `≤ T`),
    /// written `control: A<><=T φ` / `control: A[]<=T φ`.
    ///
    /// A bounded reachability purpose requires the tester to force φ within
    /// `T` time units; a bounded safety purpose requires φ to hold at every
    /// point up to and including time `T`.  Parsing guarantees
    /// `0 <= T <= tiga_model::MAX_CONSTANT`.
    pub bound: Option<i64>,
    /// The original source text, kept for reports.
    pub source: String,
}

impl TestPurpose {
    /// Parses a `control: A<> φ` or `control: A[] φ` formula and resolves all
    /// names against `system`.
    ///
    /// # Errors
    ///
    /// Returns a [`TctlError`] if the input cannot be tokenized, parsed or
    /// resolved.
    ///
    /// # Examples
    ///
    /// ```
    /// use tiga_model::{AutomatonBuilder, SystemBuilder};
    /// use tiga_tctl::TestPurpose;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = SystemBuilder::new("s");
    /// let mut a = AutomatonBuilder::new("IUT");
    /// a.location("Off")?;
    /// a.location("Bright")?;
    /// b.add_automaton(a.build()?)?;
    /// let system = b.build()?;
    ///
    /// let tp = TestPurpose::parse("control: A<> IUT.Bright", &system)?;
    /// assert_eq!(tp.quantifier, tiga_tctl::PathQuantifier::Reachability);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(input: &str, system: &System) -> Result<Self, TctlError> {
        crate::parser::parse_test_purpose(input, system)
    }

    /// Convenience constructor for a reachability purpose from an already
    /// resolved predicate.
    #[must_use]
    pub fn reachability(predicate: StatePredicate) -> Self {
        TestPurpose {
            quantifier: PathQuantifier::Reachability,
            predicate,
            bound: None,
            source: String::new(),
        }
    }

    /// Convenience constructor for a safety purpose from an already resolved
    /// predicate.
    #[must_use]
    pub fn safety(predicate: StatePredicate) -> Self {
        TestPurpose {
            quantifier: PathQuantifier::Safety,
            predicate,
            bound: None,
            source: String::new(),
        }
    }

    /// Attaches a time bound `T` (model time units, weak `≤ T`) to the
    /// purpose, clearing any stale `source` text so the purpose renders from
    /// its structure.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is negative or exceeds [`tiga_model::MAX_CONSTANT`]
    /// — the same range the parser enforces with a spanned error.
    #[must_use]
    pub fn with_bound(mut self, bound: i64) -> Self {
        assert!(
            (0..=i64::from(tiga_model::MAX_CONSTANT)).contains(&bound),
            "time bound {bound} outside 0..={}",
            tiga_model::MAX_CONSTANT
        );
        self.bound = Some(bound);
        self.source = String::new();
        self
    }

    /// Renders the purpose as a parseable `control:` line using the system's
    /// names (`control: A<><=7 IUT.Bright` style).  This is the canonical
    /// form: feeding the result back through [`TestPurpose::parse`] on the
    /// same system reconstructs an equivalent purpose.
    #[must_use]
    pub fn display<'a>(&'a self, system: &'a System) -> DisplayTestPurpose<'a> {
        DisplayTestPurpose {
            purpose: self,
            system,
        }
    }

    fn fmt_header(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.quantifier {
            PathQuantifier::Reachability => write!(f, "control: A<>")?,
            PathQuantifier::Safety => write!(f, "control: A[]")?,
        }
        if let Some(t) = self.bound {
            write!(f, "<={t}")?;
        }
        write!(f, " ")
    }
}

/// Helper returned by [`TestPurpose::display`].
pub struct DisplayTestPurpose<'a> {
    purpose: &'a TestPurpose,
    system: &'a System,
}

impl std::fmt::Display for DisplayTestPurpose<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.purpose.fmt_header(f)?;
        write!(f, "{}", self.purpose.predicate.display(self.system))
    }
}

/// Renders the original source text when the purpose was parsed, and
/// otherwise reconstructs the `control:` line from the structure, using the
/// system-free [`StatePredicate`] rendering (positional location/variable
/// indices).  Use [`TestPurpose::display`] for the name-resolved form.
impl std::fmt::Display for TestPurpose {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.source.is_empty() {
            self.fmt_header(f)?;
            write!(f, "{}", self.predicate)
        } else {
            f.write_str(&self.source)
        }
    }
}
