//! # tiga-tctl — test purposes for timed games
//!
//! Parser and evaluator for the test-purpose language of
//! *"A Game-Theoretic Approach to Real-Time System Testing"* (DATE 2008):
//! an annotated subset of TCTL of the form
//!
//! ```text
//! control: A<> <state predicate>     (reachability purposes)
//! control: A[] <state predicate>     (safety purposes, extension)
//! ```
//!
//! State predicates combine location tests (`IUT.Bright`), comparisons over
//! bounded integer variables and arrays (`inUse[i] == 1`), boolean
//! connectives (`and`, `or`, `not`, `imply`) and bounded quantifiers
//! (`forall (i: BufferId) ...`), exactly the forms used by the paper's
//! purposes TP1–TP3.
//!
//! # Example
//!
//! ```
//! use tiga_model::{AutomatonBuilder, SystemBuilder};
//! use tiga_tctl::TestPurpose;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = SystemBuilder::new("light");
//! builder.int_array("inUse", 2, 0, 1, 0)?;
//! let mut iut = AutomatonBuilder::new("IUT");
//! iut.location("Off")?;
//! iut.location("Bright")?;
//! builder.add_automaton(iut.build()?)?;
//! let system = builder.build()?;
//!
//! let tp = TestPurpose::parse(
//!     "control: A<> IUT.Bright and forall (i: inUse) (inUse[i] == 0)",
//!     &system,
//! )?;
//! let initial = system.initial_discrete();
//! assert!(!tp.predicate.holds(&system, &initial)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod parser;

pub use ast::{DisplayPredicate, PathQuantifier, StatePredicate, TestPurpose};
pub use error::TctlError;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_predicate, parse_test_purpose};
