//! Errors produced while parsing or resolving test purposes.

use std::fmt;

/// Error raised by the test-purpose parser and resolver.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TctlError {
    /// The input could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// The token stream did not match the grammar.
    Parse {
        /// Byte position where parsing failed.
        position: usize,
        /// Description of what was expected.
        expected: String,
        /// Description of what was found instead.
        found: String,
    },
    /// A name could not be resolved against the system.
    Unresolved(String),
    /// The formula is structurally invalid (e.g. a location used as an
    /// integer).
    Invalid(String),
    /// An error occurred while evaluating the predicate.
    Eval(String),
}

impl fmt::Display for TctlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TctlError::Lex { position, found } => {
                write!(f, "unexpected character `{found}` at byte {position}")
            }
            TctlError::Parse {
                position,
                expected,
                found,
            } => write!(
                f,
                "expected {expected} but found {found} at byte {position}"
            ),
            TctlError::Unresolved(name) => write!(f, "cannot resolve `{name}`"),
            TctlError::Invalid(msg) => write!(f, "invalid test purpose: {msg}"),
            TctlError::Eval(msg) => write!(f, "evaluation failed: {msg}"),
        }
    }
}

impl std::error::Error for TctlError {}
