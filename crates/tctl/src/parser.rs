//! Recursive-descent parser and name resolver for the test-purpose language.
//!
//! Parsing proceeds in two stages: first an untyped syntax tree is built from
//! the tokens, then names are resolved against the [`System`] while bounded
//! quantifiers (`forall`/`exists`) are expanded into finite conjunctions /
//! disjunctions with the bound variable substituted by constants.

use crate::ast::{PathQuantifier, StatePredicate, TestPurpose};
use crate::error::TctlError;
use crate::lexer::{tokenize, Token, TokenKind};
use tiga_model::{CmpOp, Expr, System};

/// Untyped syntax tree produced by the parser before name resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Raw {
    Num(i64),
    Ident(String),
    Qualified(String, String),
    Index(String, Box<Raw>),
    Neg(Box<Raw>),
    Not(Box<Raw>),
    Bin(RawOp, Box<Raw>, Box<Raw>),
    Forall(String, RawRange, Box<Raw>),
    Exists(String, RawRange, Box<Raw>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RawOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Cmp(CmpOp),
    And,
    Or,
    Imply,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum RawRange {
    /// `forall (i : Name)` — `Name` resolves to an array (its size) or to a
    /// named constant.
    Named(String),
    /// `forall (i : 4)` — indices `0..4`.
    Size(i64),
    /// `forall (i : 2..5)` — inclusive span.
    Span(i64, i64),
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn new(tokens: &'t [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn position(&self) -> usize {
        self.tokens.get(self.pos).map_or_else(
            || self.tokens.last().map_or(0, |t| t.position + 1),
            |t| t.position,
        )
    }

    fn found(&self) -> String {
        match self.peek() {
            None => "end of input".to_string(),
            Some(k) => format!("{k:?}"),
        }
    }

    fn error(&self, expected: &str) -> TctlError {
        TctlError::Parse {
            position: self.position(),
            expected: expected.to_string(),
            found: self.found(),
        }
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), TctlError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, TctlError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(what)),
        }
    }

    /// Parses the `T` of a `<=T` time bound (the `<=` is already consumed),
    /// rejecting negative values and values above
    /// [`tiga_model::MAX_CONSTANT`] with a spanned error instead of letting
    /// them panic deep inside the DBM layer.
    fn parse_time_bound(&mut self) -> Result<i64, TctlError> {
        let position = self.position();
        let negative = if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        let value = match self.peek() {
            Some(TokenKind::Number(n)) => {
                let n = *n;
                self.pos += 1;
                n
            }
            _ => return Err(self.error("a time bound (non-negative integer)")),
        };
        let value = if negative { -value } else { value };
        if !(0..=i64::from(tiga_model::MAX_CONSTANT)).contains(&value) {
            return Err(TctlError::Parse {
                position,
                expected: format!("a time bound in 0..={}", tiga_model::MAX_CONSTANT),
                found: value.to_string(),
            });
        }
        Ok(value)
    }

    /// `imply` has the lowest precedence and associates to the right.
    fn parse_imply(&mut self) -> Result<Raw, TctlError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&TokenKind::Imply) {
            self.pos += 1;
            let rhs = self.parse_imply()?;
            Ok(Raw::Bin(RawOp::Imply, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Raw, TctlError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&TokenKind::Or) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Raw::Bin(RawOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Raw, TctlError> {
        let mut lhs = self.parse_quantified()?;
        while self.peek() == Some(&TokenKind::And) {
            self.pos += 1;
            let rhs = self.parse_quantified()?;
            lhs = Raw::Bin(RawOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_quantified(&mut self) -> Result<Raw, TctlError> {
        match self.peek() {
            Some(TokenKind::Not) => {
                self.pos += 1;
                Ok(Raw::Not(Box::new(self.parse_quantified()?)))
            }
            Some(TokenKind::Ident(name)) if name == "forall" || name == "exists" => {
                let is_forall = name == "forall";
                self.pos += 1;
                self.expect(&TokenKind::LParen, "`(` after quantifier")?;
                let var = self.expect_ident("bound variable name")?;
                self.expect(&TokenKind::Colon, "`:` in quantifier binder")?;
                let range = self.parse_range()?;
                self.expect(&TokenKind::RParen, "`)` closing the quantifier binder")?;
                let body = Box::new(self.parse_quantified()?);
                Ok(if is_forall {
                    Raw::Forall(var, range, body)
                } else {
                    Raw::Exists(var, range, body)
                })
            }
            _ => self.parse_cmp(),
        }
    }

    fn parse_range(&mut self) -> Result<RawRange, TctlError> {
        match self.peek().cloned() {
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                Ok(RawRange::Named(name))
            }
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                if self.peek() == Some(&TokenKind::DotDot) {
                    self.pos += 1;
                    match self.bump() {
                        Some(TokenKind::Number(m)) => Ok(RawRange::Span(n, *m)),
                        _ => Err(self.error("upper bound of range")),
                    }
                } else {
                    Ok(RawRange::Size(n))
                }
            }
            _ => Err(self.error("range (array name, size or `lo..hi`)")),
        }
    }

    fn parse_cmp(&mut self) -> Result<Raw, TctlError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(TokenKind::EqEq) => Some(CmpOp::Eq),
            Some(TokenKind::NotEq) => Some(CmpOp::Ne),
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.pos += 1;
                let rhs = self.parse_add()?;
                Ok(Raw::Bin(RawOp::Cmp(op), Box::new(lhs), Box::new(rhs)))
            }
        }
    }

    fn parse_add(&mut self) -> Result<Raw, TctlError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => RawOp::Add,
                Some(TokenKind::Minus) => RawOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Raw::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Raw, TctlError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => RawOp::Mul,
                Some(TokenKind::Slash) => RawOp::Div,
                Some(TokenKind::Percent) => RawOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Raw::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Raw, TctlError> {
        if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            Ok(Raw::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Raw, TctlError> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                Ok(Raw::Num(n))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.parse_imply()?;
                self.expect(&TokenKind::RParen, "closing `)`")?;
                Ok(inner)
            }
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "true" => return Ok(Raw::Num(1)),
                    "false" => return Ok(Raw::Num(0)),
                    _ => {}
                }
                match self.peek() {
                    Some(TokenKind::Dot) => {
                        self.pos += 1;
                        let loc = self.expect_ident("location name after `.`")?;
                        Ok(Raw::Qualified(name, loc))
                    }
                    Some(TokenKind::LBracket) => {
                        self.pos += 1;
                        let idx = self.parse_add()?;
                        self.expect(&TokenKind::RBracket, "closing `]`")?;
                        Ok(Raw::Index(name, Box::new(idx)))
                    }
                    _ => Ok(Raw::Ident(name)),
                }
            }
            _ => Err(self.error("an atom (number, name, location or `(`)")),
        }
    }
}

/// Bindings of quantifier variables to concrete values during resolution.
type Env<'a> = Vec<(&'a str, i64)>;

fn lookup_env(env: &Env<'_>, name: &str) -> Option<i64> {
    env.iter()
        .rev()
        .find_map(|(n, v)| if *n == name { Some(*v) } else { None })
}

fn range_values(range: &RawRange, system: &System) -> Result<Vec<i64>, TctlError> {
    match range {
        RawRange::Size(n) => {
            if *n <= 0 {
                return Err(TctlError::Invalid(format!("empty quantifier range {n}")));
            }
            Ok((0..*n).collect())
        }
        RawRange::Span(lo, hi) => {
            if lo > hi {
                return Err(TctlError::Invalid(format!(
                    "empty quantifier range {lo}..{hi}"
                )));
            }
            Ok((*lo..=*hi).collect())
        }
        RawRange::Named(name) => {
            if let Some(var) = system.vars().lookup(name) {
                let decl = system.vars().decl(var);
                if decl.is_array() {
                    return Ok((0..decl.size() as i64).collect());
                }
                // A named constant denotes the size of the range.
                if decl.lower() == decl.upper() {
                    let n = decl.lower();
                    if n <= 0 {
                        return Err(TctlError::Invalid(format!(
                            "constant `{name}` does not describe a non-empty range"
                        )));
                    }
                    return Ok((0..n).collect());
                }
            }
            // `BufferId`-style index types: `<array>Id` refers to the indices
            // of `<array>` if such an array exists (paper notation).
            if let Some(stripped) = name.strip_suffix("Id") {
                for decl in system.vars().iter() {
                    if decl.is_array() && decl.name().eq_ignore_ascii_case(stripped) {
                        return Ok((0..decl.size() as i64).collect());
                    }
                }
            }
            Err(TctlError::Unresolved(format!("quantifier range `{name}`")))
        }
    }
}

fn resolve_int(raw: &Raw, system: &System, env: &Env<'_>) -> Result<Expr, TctlError> {
    match raw {
        Raw::Num(n) => Ok(Expr::constant(*n)),
        Raw::Ident(name) => {
            if let Some(v) = lookup_env(env, name) {
                return Ok(Expr::constant(v));
            }
            let var = system
                .vars()
                .lookup(name)
                .ok_or_else(|| TctlError::Unresolved(name.clone()))?;
            if system.vars().decl(var).is_array() {
                return Err(TctlError::Invalid(format!(
                    "array `{name}` used without an index"
                )));
            }
            Ok(Expr::var(var))
        }
        Raw::Index(name, idx) => {
            let var = system
                .vars()
                .lookup(name)
                .ok_or_else(|| TctlError::Unresolved(name.clone()))?;
            let idx = resolve_int(idx, system, env)?;
            Ok(Expr::index(var, idx))
        }
        Raw::Neg(e) => Ok(Expr::Neg(Box::new(resolve_int(e, system, env)?))),
        Raw::Not(e) => Ok(resolve_int(e, system, env)?.negated()),
        Raw::Bin(op, a, b) => {
            let a = resolve_int(a, system, env)?;
            let b = resolve_int(b, system, env)?;
            Ok(match op {
                RawOp::Add => a + b,
                RawOp::Sub => a - b,
                RawOp::Mul => a * b,
                RawOp::Div => Expr::Div(Box::new(a), Box::new(b)),
                RawOp::Mod => Expr::Mod(Box::new(a), Box::new(b)),
                RawOp::Cmp(op) => a.cmp(*op, b),
                RawOp::And => a.and(b),
                RawOp::Or => a.or(b),
                RawOp::Imply => a.negated().or(b),
            })
        }
        Raw::Qualified(a, l) => {
            // UPPAAL-style process-qualified variable (`IUT.betterInfo`): the
            // reproduction uses global variables, so fall back to the bare
            // name.
            if let Some(var) = system.vars().lookup(l) {
                if system.vars().decl(var).is_array() {
                    return Err(TctlError::Invalid(format!(
                        "array `{a}.{l}` used without an index"
                    )));
                }
                return Ok(Expr::var(var));
            }
            Err(TctlError::Invalid(format!(
                "location `{a}.{l}` cannot be used as an integer"
            )))
        }
        Raw::Forall(..) | Raw::Exists(..) => Err(TctlError::Invalid(
            "quantifiers cannot appear inside arithmetic".to_string(),
        )),
    }
}

fn resolve_bool(raw: &Raw, system: &System, env: &Env<'_>) -> Result<StatePredicate, TctlError> {
    match raw {
        Raw::Num(n) => Ok(if *n != 0 {
            StatePredicate::True
        } else {
            StatePredicate::False
        }),
        Raw::Qualified(aut, loc) => {
            if let Some((a, l)) = system.location_by_qualified_name(&format!("{aut}.{loc}")) {
                return Ok(StatePredicate::Location(a, l));
            }
            // Fall back to a process-qualified global variable used as a
            // boolean (`IUT.betterInfo` in the paper's TP1).
            if let Some(var) = system.vars().lookup(loc) {
                if !system.vars().decl(var).is_array() {
                    return Ok(StatePredicate::Expr(Expr::var(var)));
                }
            }
            Err(TctlError::Unresolved(format!("{aut}.{loc}")))
        }
        Raw::Not(e) => Ok(resolve_bool(e, system, env)?.negated()),
        Raw::Bin(RawOp::And, a, b) => {
            Ok(resolve_bool(a, system, env)?.and(resolve_bool(b, system, env)?))
        }
        Raw::Bin(RawOp::Or, a, b) => {
            Ok(resolve_bool(a, system, env)?.or(resolve_bool(b, system, env)?))
        }
        Raw::Bin(RawOp::Imply, a, b) => Ok(resolve_bool(a, system, env)?
            .negated()
            .or(resolve_bool(b, system, env)?)),
        Raw::Forall(var, range, body) => {
            let mut acc = StatePredicate::True;
            for v in range_values(range, system)? {
                let mut env2 = env.clone();
                env2.push((var.as_str(), v));
                acc = acc.and(resolve_bool(body, system, &env2)?);
            }
            Ok(acc)
        }
        Raw::Exists(var, range, body) => {
            let mut acc = StatePredicate::False;
            for v in range_values(range, system)? {
                let mut env2 = env.clone();
                env2.push((var.as_str(), v));
                acc = acc.or(resolve_bool(body, system, &env2)?);
            }
            Ok(acc)
        }
        // Everything else is an integer expression interpreted as a boolean.
        _ => Ok(StatePredicate::Expr(resolve_int(raw, system, env)?)),
    }
}

/// Parses and resolves a complete `control: A<>/A[] φ` test purpose.
///
/// # Errors
///
/// Returns a [`TctlError`] describing the first lexical, syntactic or
/// resolution problem.
pub fn parse_test_purpose(input: &str, system: &System) -> Result<TestPurpose, TctlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(&tokens);
    // `control :`
    let kw = p.expect_ident("the keyword `control`")?;
    if kw != "control" {
        return Err(TctlError::Invalid(format!(
            "test purposes start with `control:`, found `{kw}`"
        )));
    }
    p.expect(&TokenKind::Colon, "`:` after `control`")?;
    // `A<>` or `A[]`
    let a = p.expect_ident("the path quantifier `A`")?;
    if a != "A" {
        return Err(TctlError::Invalid(format!(
            "only `A<>` and `A[]` purposes are supported, found `{a}`"
        )));
    }
    let quantifier = match p.bump() {
        Some(TokenKind::Diamond) => PathQuantifier::Reachability,
        Some(TokenKind::Box) => PathQuantifier::Safety,
        _ => {
            return Err(TctlError::Invalid(
                "expected `<>` or `[]` after `A`".to_string(),
            ))
        }
    };
    // Optional time bound: `A<><=T φ` / `A[]<=T φ`.
    let bound = if p.peek() == Some(&TokenKind::Le) {
        p.pos += 1;
        Some(p.parse_time_bound()?)
    } else {
        None
    };
    let raw = p.parse_imply()?;
    if p.peek().is_some() {
        return Err(p.error("end of input"));
    }
    let predicate = resolve_bool(&raw, system, &Vec::new())?;
    Ok(TestPurpose {
        quantifier,
        predicate,
        bound,
        source: input.trim().to_string(),
    })
}

/// Parses and resolves a bare state predicate (without the `control: A<>`
/// wrapper), useful for defining goal sets or monitors programmatically.
///
/// # Errors
///
/// Returns a [`TctlError`] describing the first problem found.
pub fn parse_predicate(input: &str, system: &System) -> Result<StatePredicate, TctlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(&tokens);
    let raw = p.parse_imply()?;
    if p.peek().is_some() {
        return Err(p.error("end of input"));
    }
    resolve_bool(&raw, system, &Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, SystemBuilder};

    /// A system shaped like the paper's examples: an `IUT` automaton with a
    /// few locations, a buffer array `inUse[3]`, and scalars
    /// `betterInfo`/`forwardCount`.
    fn sample_system() -> System {
        let mut b = SystemBuilder::new("sample");
        b.int_array("inUse", 3, 0, 1, 0).unwrap();
        b.int_var("betterInfo", 0, 1, 0).unwrap();
        b.int_var("forwardCount", 0, 10, 0).unwrap();
        b.constant("N", 3).unwrap();
        // Index-type constant in the style of the paper's `BufferId`.
        b.constant("BufferId", 3).unwrap();
        let mut a = AutomatonBuilder::new("IUT");
        a.location("Off").unwrap();
        a.location("Dim").unwrap();
        a.location("Bright").unwrap();
        a.location("idle").unwrap();
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    fn state_with(
        system: &System,
        loc: &str,
        in_use: [i64; 3],
        better: i64,
    ) -> tiga_model::DiscreteState {
        let mut d = system.initial_discrete();
        let (aut, l) = system
            .location_by_qualified_name(&format!("IUT.{loc}"))
            .unwrap();
        d.locations[aut.index()] = l;
        let in_use_var = system.vars().lookup("inUse").unwrap();
        let off = system.vars().offset(in_use_var);
        d.vars[off..off + 3].copy_from_slice(&in_use);
        let better_var = system.vars().lookup("betterInfo").unwrap();
        d.vars[system.vars().offset(better_var)] = better;
        d
    }

    #[test]
    fn parses_tp_bright() {
        let sys = sample_system();
        let tp = TestPurpose::parse("control: A<> IUT.Bright", &sys).unwrap();
        assert_eq!(tp.quantifier, PathQuantifier::Reachability);
        let bright = state_with(&sys, "Bright", [0, 0, 0], 0);
        let off = state_with(&sys, "Off", [0, 0, 0], 0);
        assert!(tp.predicate.holds(&sys, &bright).unwrap());
        assert!(!tp.predicate.holds(&sys, &off).unwrap());
        assert_eq!(tp.to_string(), "control: A<> IUT.Bright");
    }

    #[test]
    fn parses_tp1_conjunction() {
        let sys = sample_system();
        let tp = TestPurpose::parse("control: A<> (IUT.Dim and betterInfo == 1)", &sys).unwrap();
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 1))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Bright", [0, 0, 0], 1))
            .unwrap());
    }

    #[test]
    fn parses_tp2_forall_over_array() {
        let sys = sample_system();
        for text in [
            "control: A<> forall (i: BufferId) (inUse[i] == 1)",
            "control: A<> forall (i: inUse) (inUse[i] == 1)",
            "control: A<> forall (i: 3) (inUse[i] == 1)",
            "control: A<> forall (i: 0..2) (inUse[i] == 1)",
        ] {
            let tp = TestPurpose::parse(text, &sys).unwrap();
            assert!(tp
                .predicate
                .holds(&sys, &state_with(&sys, "Off", [1, 1, 1], 0))
                .unwrap());
            assert!(!tp
                .predicate
                .holds(&sys, &state_with(&sys, "Off", [1, 0, 1], 0))
                .unwrap());
        }
    }

    #[test]
    fn parses_tp3_forall_and_location() {
        let sys = sample_system();
        let tp = TestPurpose::parse(
            "control: A<> forall (i: BufferId) (inUse[i] == 1) and IUT.idle",
            &sys,
        )
        .unwrap();
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "idle", [1, 1, 1], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Off", [1, 1, 1], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "idle", [1, 0, 1], 0))
            .unwrap());
    }

    #[test]
    fn parses_exists_and_not() {
        let sys = sample_system();
        let tp = TestPurpose::parse(
            "control: A<> exists (i: inUse) (inUse[i] == 1) and not IUT.Off",
            &sys,
        )
        .unwrap();
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 1, 0], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Off", [0, 1, 0], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 0))
            .unwrap());
    }

    #[test]
    fn parses_safety_purpose_and_imply() {
        let sys = sample_system();
        let tp = TestPurpose::parse("control: A[] betterInfo == 1 imply IUT.Dim", &sys).unwrap();
        assert_eq!(tp.quantifier, PathQuantifier::Safety);
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 1))
            .unwrap());
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "Off", [0, 0, 0], 0))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Off", [0, 0, 0], 1))
            .unwrap());
    }

    #[test]
    fn arithmetic_inside_predicates() {
        let sys = sample_system();
        let p = parse_predicate("forwardCount + betterInfo >= 1", &sys).unwrap();
        assert!(!p
            .holds(&sys, &state_with(&sys, "Off", [0, 0, 0], 0))
            .unwrap());
        assert!(p
            .holds(&sys, &state_with(&sys, "Off", [0, 0, 0], 1))
            .unwrap());
        let p = parse_predicate("N == 3", &sys).unwrap();
        assert!(p.holds(&sys, &sys.initial_discrete()).unwrap());
        let p = parse_predicate("2 * N - 1 == 5", &sys).unwrap();
        assert!(p.holds(&sys, &sys.initial_discrete()).unwrap());
    }

    #[test]
    fn named_constant_as_quantifier_range() {
        let sys = sample_system();
        let p = parse_predicate("forall (i: N) (inUse[i] == 0)", &sys).unwrap();
        assert!(p.holds(&sys, &sys.initial_discrete()).unwrap());
        assert!(!p
            .holds(&sys, &state_with(&sys, "Off", [0, 1, 0], 0))
            .unwrap());
    }

    #[test]
    fn error_reporting() {
        let sys = sample_system();
        assert!(matches!(
            TestPurpose::parse("A<> IUT.Bright", &sys),
            Err(TctlError::Invalid(_)) | Err(TctlError::Parse { .. })
        ));
        assert!(matches!(
            TestPurpose::parse("control: E<> IUT.Bright", &sys),
            Err(TctlError::Invalid(_))
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> IUT.Missing", &sys),
            Err(TctlError::Unresolved(_))
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> nosuchvar == 1", &sys),
            Err(TctlError::Unresolved(_))
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> IUT.Bright extra", &sys),
            Err(TctlError::Parse { .. })
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> forall (i: Nope) (inUse[i] == 1)", &sys),
            Err(TctlError::Unresolved(_))
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> inUse == 1", &sys),
            Err(TctlError::Invalid(_))
        ));
        assert!(matches!(
            TestPurpose::parse("control: A<> IUT.Bright + 1 == 2", &sys),
            Err(TctlError::Invalid(_))
        ));
    }

    #[test]
    fn parses_time_bounds_on_both_quantifiers() {
        let sys = sample_system();
        let tp = TestPurpose::parse("control: A<><=7 IUT.Bright", &sys).unwrap();
        assert_eq!(tp.quantifier, PathQuantifier::Reachability);
        assert_eq!(tp.bound, Some(7));
        assert_eq!(tp.to_string(), "control: A<><=7 IUT.Bright");

        let tp = TestPurpose::parse("control: A[]<=12 not IUT.Bright", &sys).unwrap();
        assert_eq!(tp.quantifier, PathQuantifier::Safety);
        assert_eq!(tp.bound, Some(12));

        // Whitespace around the bound is irrelevant; zero is a legal bound.
        let tp = TestPurpose::parse("control: A<> <= 0 IUT.Bright", &sys).unwrap();
        assert_eq!(tp.bound, Some(0));

        // The largest representable bound parses; `<=` further in stays an
        // ordinary comparison.
        let max = i64::from(tiga_model::MAX_CONSTANT);
        let tp = TestPurpose::parse(&format!("control: A<><={max} IUT.Bright"), &sys).unwrap();
        assert_eq!(tp.bound, Some(max));
        let tp = TestPurpose::parse("control: A<> forwardCount <= 3", &sys).unwrap();
        assert_eq!(tp.bound, None);
    }

    #[test]
    fn rejects_out_of_range_time_bounds_with_spans() {
        let sys = sample_system();
        let text = "control: A<><=-1 IUT.Bright";
        match TestPurpose::parse(text, &sys) {
            Err(TctlError::Parse {
                position,
                expected,
                found,
            }) => {
                assert_eq!(position, text.find("-1").unwrap());
                assert!(expected.contains("time bound"), "{expected}");
                assert_eq!(found, "-1");
            }
            other => panic!("expected a spanned parse error, got {other:?}"),
        }
        let too_big = i64::from(tiga_model::MAX_CONSTANT) + 1;
        let text = format!("control: A[]<={too_big} IUT.Bright");
        match TestPurpose::parse(&text, &sys) {
            Err(TctlError::Parse {
                position, found, ..
            }) => {
                assert_eq!(position, text.find(&too_big.to_string()).unwrap());
                assert_eq!(found, too_big.to_string());
            }
            other => panic!("expected a spanned parse error, got {other:?}"),
        }
        // A bound that does not even fit in i64 is a lexer-level error.
        assert!(matches!(
            TestPurpose::parse("control: A<><=99999999999999999999 IUT.Bright", &sys),
            Err(TctlError::Invalid(_))
        ));
        // `<=` with no number at all.
        assert!(matches!(
            TestPurpose::parse("control: A<><= IUT.Bright", &sys),
            Err(TctlError::Parse { .. })
        ));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let sys = sample_system();
        for text in [
            "control: A<> IUT.Bright",
            "control: A<><=7 IUT.Bright",
            "control: A[]<=3 betterInfo == 1 imply IUT.Dim",
            "control: A<> (IUT.Dim and betterInfo == 1)",
        ] {
            let tp = TestPurpose::parse(text, &sys).unwrap();
            // Parsed purposes display as their source and re-parse to the
            // same purpose.
            let reparsed = TestPurpose::parse(&tp.to_string(), &sys).unwrap();
            assert_eq!(tp, reparsed, "{text}");
            // The canonical system-resolved rendering also round-trips to an
            // equivalent purpose (source text may differ).
            let canon = tp.display(&sys).to_string();
            let from_canon = TestPurpose::parse(&canon, &sys).unwrap();
            assert_eq!(from_canon.quantifier, tp.quantifier, "{canon}");
            assert_eq!(from_canon.bound, tp.bound, "{canon}");
            assert_eq!(from_canon.predicate, tp.predicate, "{canon}");
        }
    }

    #[test]
    fn programmatic_purposes_display_their_structure() {
        let sys = sample_system();
        let parsed = TestPurpose::parse("control: A<> IUT.Bright", &sys).unwrap();
        let programmatic = TestPurpose::reachability(parsed.predicate.clone());
        // The old implementation printed a literal `<predicate>` placeholder.
        let text = programmatic.to_string();
        assert!(!text.contains("<predicate>"), "{text}");
        assert!(text.starts_with("control: A<> "), "{text}");
        let bounded = TestPurpose::safety(parsed.predicate.clone()).with_bound(9);
        assert!(bounded.to_string().starts_with("control: A[]<=9 "));
        // The system-resolved rendering is parseable.
        let canon = bounded.display(&sys).to_string();
        assert_eq!(canon, "control: A[]<=9 IUT.Bright");
        let reparsed = TestPurpose::parse(&canon, &sys).unwrap();
        assert_eq!(reparsed.predicate, bounded.predicate);
        assert_eq!(reparsed.bound, Some(9));
    }

    #[test]
    fn display_of_resolved_predicates() {
        let sys = sample_system();
        let tp = TestPurpose::parse(
            "control: A<> forall (i: 2) (inUse[i] == 1) and IUT.idle",
            &sys,
        )
        .unwrap();
        let text = format!("{}", tp.predicate.display(&sys));
        assert!(text.contains("IUT.idle"), "{text}");
        assert!(text.contains("inUse[0]"), "{text}");
        assert!(text.contains("inUse[1]"), "{text}");
    }

    #[test]
    fn process_qualified_variables_fall_back_to_globals() {
        let sys = sample_system();
        // The paper's TP1 uses `IUT.betterInfo == 1` for a process variable;
        // our models use globals, so the qualifier is dropped.
        let tp =
            TestPurpose::parse("control: A<> (IUT.betterInfo == 1) and IUT.Dim", &sys).unwrap();
        assert!(tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 1))
            .unwrap());
        assert!(!tp
            .predicate
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 0))
            .unwrap());
        // Used directly as a boolean atom.
        let p = parse_predicate("IUT.betterInfo and IUT.Dim", &sys).unwrap();
        assert!(p
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 1))
            .unwrap());
        assert!(!p
            .holds(&sys, &state_with(&sys, "Dim", [0, 0, 0], 0))
            .unwrap());
        // Unknown names still fail.
        assert!(matches!(
            parse_predicate("IUT.noSuchThing == 1", &sys),
            Err(TctlError::Invalid(_)) | Err(TctlError::Unresolved(_))
        ));
    }

    #[test]
    fn true_false_literals() {
        let sys = sample_system();
        assert_eq!(parse_predicate("true", &sys).unwrap(), StatePredicate::True);
        assert_eq!(
            parse_predicate("false", &sys).unwrap(),
            StatePredicate::False
        );
        // Simplification keeps conjunctions with `true` small.
        assert_eq!(
            parse_predicate("true and IUT.Off", &sys).unwrap(),
            parse_predicate("IUT.Off", &sys).unwrap()
        );
    }
}
