//! Tokenizer for the test-purpose language.

use crate::error::TctlError;

/// A lexical token with its byte position in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub position: usize,
}

/// The kinds of token recognised by the test-purpose language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`control`, `A`, `forall`, variable names, ...).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<>`
    Diamond,
    /// `[]`
    Box,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` or keyword `and`
    And,
    /// `||` or keyword `or`
    Or,
    /// `!` or keyword `not`
    Not,
    /// `imply` (UPPAAL-style implication keyword)
    Imply,
}

/// Splits the input into tokens.
///
/// # Errors
///
/// Returns [`TctlError::Lex`] on unrecognised characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, TctlError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    position: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    position: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    position: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    position: start,
                });
                i += 1;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&'.') {
                    tokens.push(Token {
                        kind: TokenKind::DotDot,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        position: start,
                    });
                    i += 1;
                }
            }
            '[' => {
                if bytes.get(i + 1) == Some(&']') {
                    tokens.push(Token {
                        kind: TokenKind::Box,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::LBracket,
                        position: start,
                    });
                    i += 1;
                }
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    position: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token {
                        kind: TokenKind::Diamond,
                        position: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(TctlError::Lex {
                        position: start,
                        found: '=',
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Not,
                        position: start,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    tokens.push(Token {
                        kind: TokenKind::And,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(TctlError::Lex {
                        position: start,
                        found: '&',
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    tokens.push(Token {
                        kind: TokenKind::Or,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(TctlError::Lex {
                        position: start,
                        found: '|',
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut value: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i64::from(bytes[i] as u8 - b'0')))
                        .ok_or_else(|| {
                            TctlError::Invalid(format!(
                                "integer literal at position {start} overflows i64"
                            ))
                        })?;
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    position: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    name.push(bytes[i]);
                    i += 1;
                }
                let kind = match name.as_str() {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "imply" => TokenKind::Imply,
                    _ => TokenKind::Ident(name),
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
            }
            other => {
                return Err(TctlError::Lex {
                    position: start,
                    found: other,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_the_paper_formulas() {
        let ks = kinds("control: A<> IUT.Bright");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("control".into()),
                TokenKind::Colon,
                TokenKind::Ident("A".into()),
                TokenKind::Diamond,
                TokenKind::Ident("IUT".into()),
                TokenKind::Dot,
                TokenKind::Ident("Bright".into()),
            ]
        );
        let ks = kinds("control: A<> forall (i: BufferId) (inUse[i] == 1) and IUT.idle");
        assert!(ks.contains(&TokenKind::Ident("forall".into())));
        assert!(ks.contains(&TokenKind::LBracket));
        assert!(ks.contains(&TokenKind::EqEq));
        assert!(ks.contains(&TokenKind::And));
    }

    #[test]
    fn distinguishes_box_and_brackets() {
        assert_eq!(kinds("A[]")[1], TokenKind::Box);
        assert_eq!(kinds("a[1]")[1], TokenKind::LBracket);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("x <= 1 < 2 >= 3 > 4 == 5 != 6"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Le,
                TokenKind::Number(1),
                TokenKind::Lt,
                TokenKind::Number(2),
                TokenKind::Ge,
                TokenKind::Number(3),
                TokenKind::Gt,
                TokenKind::Number(4),
                TokenKind::EqEq,
                TokenKind::Number(5),
                TokenKind::NotEq,
                TokenKind::Number(6),
            ]
        );
    }

    #[test]
    fn ranges_and_arithmetic() {
        assert_eq!(
            kinds("0..7 + 2*3 - 4/2 % 5"),
            vec![
                TokenKind::Number(0),
                TokenKind::DotDot,
                TokenKind::Number(7),
                TokenKind::Plus,
                TokenKind::Number(2),
                TokenKind::Star,
                TokenKind::Number(3),
                TokenKind::Minus,
                TokenKind::Number(4),
                TokenKind::Slash,
                TokenKind::Number(2),
                TokenKind::Percent,
                TokenKind::Number(5),
            ]
        );
    }

    #[test]
    fn keyword_and_symbol_connectives_agree() {
        assert_eq!(kinds("a and b")[1], TokenKind::And);
        assert_eq!(kinds("a && b")[1], TokenKind::And);
        assert_eq!(kinds("a or b")[1], TokenKind::Or);
        assert_eq!(kinds("a || b")[1], TokenKind::Or);
        assert_eq!(kinds("not a")[0], TokenKind::Not);
        assert_eq!(kinds("!a")[0], TokenKind::Not);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(tokenize("a = b"), Err(TctlError::Lex { .. })));
        assert!(matches!(tokenize("a & b"), Err(TctlError::Lex { .. })));
        assert!(matches!(tokenize("a # b"), Err(TctlError::Lex { .. })));
    }

    #[test]
    fn oversized_integer_literals_are_rejected() {
        assert!(matches!(
            tokenize("x == 99999999999999999999"),
            Err(TctlError::Invalid(_))
        ));
        // The largest representable literal still lexes.
        let toks = tokenize("9223372036854775807").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Number(i64::MAX));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("ab <= 3").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 3);
        assert_eq!(toks[2].position, 6);
    }
}
