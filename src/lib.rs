//! # tiga — game-theoretic testing of real-time systems
//!
//! A Rust reproduction of *"A Game-Theoretic Approach to Real-Time System
//! Testing"* (Alexandre David, Kim G. Larsen, Shuhao Li, Brian Nielsen —
//! DATE 2008, DOI 10.1145/1403375.1403491).
//!
//! The facade crate re-exports the workspace members:
//!
//! * [`model`] ([`tiga_model`]) — Timed I/O Game Automata: clocks, bounded
//!   integer variables, channels, networks, symbolic and concrete semantics;
//! * [`dbm`] ([`tiga_dbm`]) — zones and federations (the symbolic substrate);
//! * [`tctl`] ([`tiga_tctl`]) — `control: A<> φ` test purposes;
//! * [`solver`] ([`tiga_solver`]) — timed-game solving and winning-strategy
//!   synthesis (the UPPAAL-TIGA stand-in);
//! * [`testing`] ([`tiga_testing`]) — tioco conformance testing with winning
//!   strategies as test cases (the paper's contribution);
//! * [`models`] ([`tiga_models`]) — the Smart Light and Leader Election
//!   Protocol case studies;
//! * [`lang`] ([`tiga_lang`]) — the `.tg` textual modeling language (lexer →
//!   parser → lowering, plus the `print_system` serializer); the `tiga`
//!   command line in `crates/cli` drives solve/test/zoo workflows from `.tg`
//!   files;
//! * [`gen`] ([`tiga_gen`]) — seeded random timed-game generation, the
//!   differential fuzzing oracles (engine agreement, printer/parser
//!   roundtrip, zone-algebra reference model) and the shrinker behind
//!   `tiga fuzz`.
//!
//! Benchmarks live in the separate `tiga-bench` crate (`crates/bench`), and
//! `crates/vendor` holds API-compatible stand-ins for `rand`, `proptest` and
//! `criterion` for the offline build environment.  `cargo build --release`,
//! `cargo test -q` and `cargo bench --no-run` cover the whole workspace from
//! the repository root; see `README.md` for the full command set and layout.
//!
//! # Parallel campaigns
//!
//! Mutation campaigns run every `(policy, implementation)` pair concurrently
//! on a sharded work queue while staying **bit-identical for any thread
//! count**: job `i` is seeded with `mix64(master_seed ^ mix64(i))` before
//! scheduling, and per-job summaries are merged in job order.  See
//! [`testing::CampaignOptions`], [`testing::run_mutation_campaign_with`] and
//! the `tiga_testing::campaign` module docs for the scheme.
//!
//! # Quickstart
//!
//! ```
//! use tiga::models::smart_light;
//! use tiga::testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Synthesize a test case for "the light can always be driven to Bright".
//! let harness = TestHarness::synthesize(
//!     smart_light::product()?,
//!     smart_light::plant()?,
//!     smart_light::PURPOSE_BRIGHT,
//!     TestConfig::default(),
//! )?;
//!
//! // 2. Execute it against a (conformant, timing-uncertain) implementation.
//! let mut iut = SimulatedIut::new(
//!     "light-impl",
//!     smart_light::plant()?,
//!     harness.config().scale,
//!     OutputPolicy::Jittery { seed: 7 },
//! );
//! let report = harness.execute(&mut iut)?;
//! assert!(report.verdict.is_pass());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tiga_dbm as dbm;
pub use tiga_gen as gen;
pub use tiga_lang as lang;
pub use tiga_model as model;
pub use tiga_models as models;
pub use tiga_solver as solver;
pub use tiga_tctl as tctl;
pub use tiga_testing as testing;
