//! The paper's running example: the Smart Light (Figs. 2, 3 and 5).
//!
//! This example
//!
//! 1. prints the structure of the light TIOGA and the user TA,
//! 2. synthesizes the winning strategy for `control: A<> IUT.Bright` and
//!    prints it in the style of the paper's Fig. 5,
//! 3. executes the strategy against a conformant implementation and against a
//!    faulty one.
//!
//! Run with `cargo run --example smart_light`.

use tiga::model::Sync;
use tiga::models::smart_light;
use tiga::testing::{
    generate_mutants, MutationConfig, OutputPolicy, SimulatedIut, TestConfig, TestHarness,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let product = smart_light::product()?;
    let plant = smart_light::plant()?;

    // --- Fig. 2 / Fig. 3: model structure -------------------------------
    println!("== Smart Light (Fig. 2 / Fig. 3) ==");
    for automaton in product.automata() {
        println!("automaton {}:", automaton.name());
        for (i, loc) in automaton.locations().iter().enumerate() {
            let marker = if i == automaton.initial().index() {
                "*"
            } else {
                " "
            };
            println!("  {marker} location {}", loc.name);
        }
        for edge in automaton.edges() {
            let label = match edge.sync {
                Sync::Tau => "tau".to_string(),
                Sync::Input(c) => format!("{}?", product.channel(c).name()),
                Sync::Output(c) => format!("{}!", product.channel(c).name()),
            };
            println!(
                "    {} --{label}--> {}",
                automaton.location(edge.source).name,
                automaton.location(edge.target).name
            );
        }
    }
    println!(
        "constants: Tidle = {}, Tsw = {}, Treact = {}, output jitter = {}",
        smart_light::T_IDLE,
        smart_light::T_SW,
        smart_light::T_REACT,
        smart_light::OUTPUT_JITTER
    );

    // --- Fig. 5: the winning strategy -----------------------------------
    let harness = TestHarness::synthesize(
        product.clone(),
        plant.clone(),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )?;
    println!();
    println!(
        "== Winning strategy for `{}` (Fig. 5 style) ==",
        harness.purpose()
    );
    println!("{}", harness.strategy().display(&product));

    // --- Test execution ---------------------------------------------------
    println!("== Test execution ==");
    let mut conformant = SimulatedIut::new(
        "conformant-light",
        plant.clone(),
        harness.config().scale,
        OutputPolicy::Jittery { seed: 2008 },
    );
    let report = harness.execute(&mut conformant)?;
    println!("conformant implementation: {}", report.verdict);
    println!("  trace: {}", report.trace.display(report.scale));

    // Faulty implementations: run the pool of mutants and show the first one
    // whose fault this targeted test case exposes.
    let mutants = generate_mutants(&plant, &MutationConfig::default())?;
    let mut detected = 0usize;
    let mut shown = false;
    for mutant in &mutants {
        let mut faulty = SimulatedIut::new(
            &mutant.name,
            mutant.system.clone(),
            harness.config().scale,
            OutputPolicy::Jittery { seed: 2008 },
        );
        let report = harness.execute(&mut faulty)?;
        if report.verdict.is_fail() {
            detected += 1;
            if !shown {
                shown = true;
                println!(
                    "faulty implementation ({}): {}",
                    mutant.description, report.verdict
                );
                println!("  trace: {}", report.trace.display(report.scale));
            }
        }
    }
    println!(
        "this single targeted test case already exposes {detected} of {} injected faults \
         (see the fault_injection example for the full campaign)",
        mutants.len()
    );

    Ok(())
}
