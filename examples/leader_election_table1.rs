//! Regenerates Table 1 of the paper: strategy-generation time and memory for
//! the Leader Election Protocol with test purposes TP1–TP3 and an increasing
//! number of nodes.
//!
//! By default the sweep runs `n = 3..=5` to stay laptop-friendly; set
//! `TIGA_LEP_MAX_N` (up to 8, as in the paper) for the full sweep and
//! `TIGA_LEP_DETAILED=1` to use the detailed buffer model (stored message
//! addresses), whose state space grows much more steeply:
//!
//! ```text
//! TIGA_LEP_MAX_N=6 TIGA_LEP_DETAILED=1 cargo run --release --example leader_election_table1
//! ```
//!
//! The absolute numbers are not comparable to the 2008 UPPAAL-TIGA prototype
//! on the authors' hardware; the point of the reproduction is the *shape*:
//! TP1 is cheap (goal pruning), TP2/TP3 grow steeply with `n`.

use std::time::Instant;
use tiga::models::leader_election::{product, LepConfig};
use tiga::solver::{solve_jacobi, SolveOptions};
use tiga::tctl::TestPurpose;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let min_n: usize = 3;
    let max_n: usize = std::env::var("TIGA_LEP_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .clamp(3, 8);
    let detailed = std::env::var("TIGA_LEP_DETAILED")
        .map(|v| v == "1")
        .unwrap_or(false);

    println!(
        "== Table 1: strategy generation for the LEP protocol ({} buffer model) ==",
        if detailed { "detailed" } else { "abstract" }
    );
    println!("(time in seconds / estimated symbolic memory in MB / explored discrete states)");
    println!();
    print!("{:<6}", "");
    for n in min_n..=max_n {
        print!("{:>22}", format!("n={n}"));
    }
    println!();

    for (name, purpose_of) in [("TP1", 0usize), ("TP2", 1usize), ("TP3", 2usize)] {
        print!("{name:<6}");
        for n in min_n..=max_n {
            let config = if detailed {
                LepConfig::detailed(n)
            } else {
                LepConfig::new(n)
            };
            let system = product(config)?;
            let purposes = config.purposes();
            let (_, text) = &purposes[purpose_of];
            let purpose = TestPurpose::parse(text, &system)?;
            let start = Instant::now();
            let solution = solve_jacobi(&system, &purpose, &SolveOptions::default())?;
            let elapsed = start.elapsed();
            let stats = solution.stats();
            let mem_mb = stats.estimated_zone_bytes(system.dim()) as f64 / (1024.0 * 1024.0);
            let cell = format!(
                "{:.2}s/{:.1}MB/{}{}",
                elapsed.as_secs_f64(),
                mem_mb,
                stats.discrete_states,
                if solution.winning_from_initial {
                    ""
                } else {
                    "!"
                }
            );
            print!("{cell:>22}");
        }
        println!();
    }
    println!();
    println!("All purposes are winnable (a `!` would flag an unexpectedly unwinnable case).");
    println!(
        "Paper reference values (2008 hardware): TP1 n=7 in 11.1s/85MB; TP2 n=7 in 452s/2977MB."
    );
    Ok(())
}
