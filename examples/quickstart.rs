//! Quickstart: synthesize a winning strategy as a test case and execute it
//! against simulated implementations.
//!
//! Run with `cargo run --example quickstart`.

use tiga::models::coffee_machine;
use tiga::testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The plant: a coffee machine that serves within [3, 5] time units of the
    // button press and refunds unused coins after 10 time units.
    let product = coffee_machine::product()?;
    let plant = coffee_machine::plant()?;

    println!("== Game-based test generation (quickstart) ==");
    println!(
        "plant `{}`: {} locations, {} edges, {} clocks",
        plant.name(),
        plant.location_count(),
        plant.edge_count(),
        plant.clocks().len()
    );

    // Synthesize a test case for the purpose "a coffee can always be obtained".
    let harness = TestHarness::synthesize(
        product,
        plant.clone(),
        coffee_machine::PURPOSE_COFFEE,
        TestConfig::default(),
    )?;
    let stats = harness.solution().stats();
    println!(
        "purpose `{}`: winnable, explored {} symbolic states, strategy with {} rules over {} states",
        harness.purpose(),
        stats.discrete_states,
        harness.strategy().rule_count(),
        harness.strategy().state_count(),
    );

    // Execute the strategy against implementations with different output
    // scheduling inside the allowed windows (the timing uncertainty the paper
    // is about).
    for policy in [
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Jittery { seed: 42 },
    ] {
        let mut iut = SimulatedIut::new(
            &format!("machine-{policy:?}"),
            plant.clone(),
            harness.config().scale,
            policy,
        );
        let report = harness.execute(&mut iut)?;
        println!(
            "  IUT[{policy:?}]  ->  {}   (trace: {})",
            report.verdict,
            report.trace.display(report.scale)
        );
    }

    Ok(())
}
