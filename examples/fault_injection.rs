//! Fault-detection experiment (the paper's future-work item 3): compare the
//! fault-detection capability of strategy-based testing against a random
//! tester, on a pool of mutated Smart Light implementations.
//!
//! Run with `cargo run --example fault_injection`.

use tiga::models::smart_light;
use tiga::testing::{
    default_policies, generate_mutants, run_mutation_campaign, run_random_campaign, MutationConfig,
    TestConfig, TestHarness,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let product = smart_light::product()?;
    let plant = smart_light::plant()?;

    let harness = TestHarness::synthesize(
        product,
        plant.clone(),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )?;

    let mutants = generate_mutants(&plant, &MutationConfig::default())?;
    println!("== Fault injection on the Smart Light ==");
    println!("{} mutants generated:", mutants.len());
    for m in &mutants {
        println!("  {:<36} {}", m.name, m.description);
    }
    println!();

    let policies = default_policies();

    println!(
        "-- strategy-based testing (purpose `{}`) --",
        harness.purpose()
    );
    let strategic = run_mutation_campaign(&harness, &plant, &mutants, &policies, 1)?;
    println!("{strategic}");

    println!("-- random testing baseline (same step budget) --");
    let random = run_random_campaign(
        harness.spec(),
        &plant,
        &mutants,
        &policies,
        harness.config(),
        0xD47E_2008,
    )?;
    println!("{random}");

    println!("== Summary ==");
    println!(
        "strategy-based: {}/{} mutants detected (score {:.2}), {} false alarms",
        strategic.detected(),
        strategic.mutant_count(),
        strategic.mutation_score(),
        strategic.false_alarms()
    );
    println!(
        "random tester : {}/{} mutants detected (score {:.2}), {} false alarms",
        random.detected(),
        random.mutant_count(),
        random.mutation_score(),
        random.false_alarms()
    );
    Ok(())
}
