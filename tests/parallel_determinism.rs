//! The parallel campaign engine must be a pure function of its inputs and
//! the master seed: summaries are bit-identical whether the Smart Light
//! mutant pool runs on 1, 2 or 8 worker threads.

use tiga::models::smart_light;
use tiga::testing::{
    default_policies, generate_mutants, run_mutation_campaign_with, run_random_campaign_with,
    CampaignOptions, MutationConfig, TestConfig, TestHarness,
};

const MASTER_SEED: u64 = 0xDA7E_2008;

#[test]
fn mutation_campaign_is_thread_count_independent() {
    let plant = smart_light::plant().expect("plant builds");
    let harness = TestHarness::synthesize(
        smart_light::product().expect("product builds"),
        plant.clone(),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )
    .expect("enforceable");
    let mutants = generate_mutants(&plant, &MutationConfig::default()).expect("mutants");
    let policies = default_policies();

    let reference = run_mutation_campaign_with(
        &harness,
        &plant,
        &mutants,
        &policies,
        &CampaignOptions::default()
            .threads(1)
            .master_seed(MASTER_SEED),
    )
    .expect("campaign runs");
    assert_eq!(reference.runs.len(), policies.len() * (mutants.len() + 1));
    assert_eq!(reference.false_alarms(), 0, "{reference}");

    for threads in [2, 8] {
        let parallel = run_mutation_campaign_with(
            &harness,
            &plant,
            &mutants,
            &policies,
            &CampaignOptions::default()
                .threads(threads)
                .master_seed(MASTER_SEED),
        )
        .expect("campaign runs");
        assert_eq!(
            reference, parallel,
            "summary diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn random_campaign_is_thread_count_independent() {
    let plant = smart_light::plant().expect("plant builds");
    let spec = smart_light::plant().expect("plant builds");
    let mutants = generate_mutants(&plant, &MutationConfig::default()).expect("mutants");
    let policies = default_policies();
    let config = TestConfig::default();

    // repetitions > 1 exercises the per-repetition seed derivation too.
    let reference = run_random_campaign_with(
        &spec,
        &plant,
        &mutants,
        &policies,
        &config,
        &CampaignOptions::default()
            .repetitions(2)
            .threads(1)
            .master_seed(MASTER_SEED),
    )
    .expect("campaign runs");
    assert_eq!(reference.false_alarms(), 0, "{reference}");

    for threads in [2, 8] {
        let parallel = run_random_campaign_with(
            &spec,
            &plant,
            &mutants,
            &policies,
            &config,
            &CampaignOptions::default()
                .repetitions(2)
                .threads(threads)
                .master_seed(MASTER_SEED),
        )
        .expect("campaign runs");
        assert_eq!(
            reference, parallel,
            "summary diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn master_seed_controls_the_jittery_runs() {
    let plant = smart_light::plant().expect("plant builds");
    let harness = TestHarness::synthesize(
        smart_light::product().expect("product builds"),
        plant.clone(),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )
    .expect("enforceable");
    let mutants = generate_mutants(&plant, &MutationConfig::default()).expect("mutants");
    let policies = default_policies();

    let run = |seed: u64| {
        run_mutation_campaign_with(
            &harness,
            &plant,
            &mutants,
            &policies,
            &CampaignOptions::default().master_seed(seed),
        )
        .expect("campaign runs")
    };
    // Same seed → identical summaries even on the default (all-cores) pool.
    assert_eq!(run(MASTER_SEED), run(MASTER_SEED));
    // Report names do not leak the derived seeds: both campaigns label runs
    // by the caller-facing policy.
    let names_a: Vec<String> = run(1).runs.iter().map(|r| r.iut_name.clone()).collect();
    let names_b: Vec<String> = run(2).runs.iter().map(|r| r.iut_name.clone()).collect();
    assert_eq!(names_a, names_b);
}
