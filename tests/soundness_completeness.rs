//! Experimental check of the paper's Theorem 10 (soundness) and Theorem 11
//! (partial completeness) on the Smart Light and coffee-machine case studies:
//!
//! * **Soundness**: a failing test run implies non-conformance — therefore a
//!   conformant implementation must never fail, whatever output timing it
//!   chooses.
//! * **Partial completeness**: if the implementation violates the
//!   specification *on the behaviours exercised by the purpose*, some
//!   synthesized strategy produces a failing run.  We check the purposeful
//!   violations (wrong output / late output on the tested path) are caught.

use tiga::models::{coffee_machine, smart_light};
use tiga::testing::{
    default_policies, generate_mutants, run_mutation_campaign, MutationConfig, OutputPolicy,
    SimulatedIut, TestConfig, TestHarness, Verdict,
};

#[test]
fn soundness_no_false_alarms_across_policies_and_purposes() {
    let plant = smart_light::plant().expect("plant builds");
    for purpose in [smart_light::PURPOSE_BRIGHT, smart_light::PURPOSE_DIM] {
        let harness = TestHarness::synthesize(
            smart_light::product().expect("product builds"),
            plant.clone(),
            purpose,
            TestConfig::default(),
        )
        .expect("enforceable");
        for policy in [
            OutputPolicy::Eager,
            OutputPolicy::Lazy,
            OutputPolicy::Offset(1),
            OutputPolicy::Offset(5),
            OutputPolicy::Jittery { seed: 11 },
            OutputPolicy::Jittery { seed: 1_234_567 },
        ] {
            let mut iut = SimulatedIut::new("light", plant.clone(), harness.config().scale, policy);
            let report = harness.execute(&mut iut).expect("executes");
            assert_eq!(
                report.verdict,
                Verdict::Pass,
                "soundness violated: conformant IUT failed purpose {purpose} under {policy:?} \
                 (trace {})",
                report.trace.display(report.scale)
            );
        }
    }
}

#[test]
fn smart_light_mutation_campaign_is_sound_and_detects_purposeful_faults() {
    let plant = smart_light::plant().expect("plant builds");
    let harness = TestHarness::synthesize(
        smart_light::product().expect("product builds"),
        plant.clone(),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )
    .expect("enforceable");
    let mutants = generate_mutants(&plant, &MutationConfig::default()).expect("mutants");
    assert!(
        mutants.len() >= 20,
        "expected a sizeable pool, got {}",
        mutants.len()
    );
    let summary = run_mutation_campaign(&harness, &plant, &mutants, &default_policies(), 1)
        .expect("campaign runs");
    // Theorem 10 in practice: the conformant implementation never fails.
    assert_eq!(summary.false_alarms(), 0, "{summary}");
    // Partial completeness in practice: faults on the exercised path are
    // detected.  The purpose drives the light to Bright via L6, so at least
    // the late-deadline mutants of the pending locations on that path and the
    // output-swap mutants of bright! must be caught.
    assert!(
        summary.detected() >= 3,
        "the targeted test case should expose several mutants:\n{summary}"
    );
    // And it is targeted: mutants off the tested path may legitimately pass.
    assert!(summary.detected() <= summary.mutant_count());
}

#[test]
fn coffee_machine_late_and_wrong_outputs_are_detected() {
    use tiga::model::{ClockConstraint, CmpOp, Sync};
    use tiga::testing::rebuild_system;

    let plant = coffee_machine::plant().expect("plant builds");
    let harness = TestHarness::synthesize(
        coffee_machine::product().expect("product builds"),
        plant.clone(),
        coffee_machine::PURPOSE_COFFEE,
        TestConfig::default(),
    )
    .expect("enforceable");

    // Conformant baseline.
    for policy in [OutputPolicy::Eager, OutputPolicy::Lazy] {
        let mut good = SimulatedIut::new("machine", plant.clone(), harness.config().scale, policy);
        assert_eq!(
            harness.execute(&mut good).expect("executes").verdict,
            Verdict::Pass
        );
    }

    // Fault 1: serving later than BREW_MAX.
    let x = plant.clock_by_name("x").expect("clock");
    let slow = rebuild_system(
        &plant,
        |_, _, l| {
            let mut l = l.clone();
            if l.name == "Brewing" {
                l.invariant = vec![ClockConstraint::new(
                    x,
                    CmpOp::Le,
                    coffee_machine::BREW_MAX + 4,
                )];
            }
            l
        },
        |_, _, e| Some(e.clone()),
    )
    .expect("rebuild");
    let mut slow_iut = SimulatedIut::new(
        "slow-machine",
        slow,
        harness.config().scale,
        OutputPolicy::Lazy,
    );
    assert!(
        harness
            .execute(&mut slow_iut)
            .expect("executes")
            .verdict
            .is_fail(),
        "late coffee must be detected"
    );

    // Fault 2: refunding instead of serving.
    let coffee_ch = plant.channel_by_name("coffee").expect("channel");
    let refund_ch = plant.channel_by_name("refund").expect("channel");
    let wrong = rebuild_system(
        &plant,
        |_, _, l| l.clone(),
        |_, _, e| {
            let mut e = e.clone();
            if e.sync == Sync::Output(coffee_ch) {
                e.sync = Sync::Output(refund_ch);
            }
            Some(e)
        },
    )
    .expect("rebuild");
    let mut wrong_iut = SimulatedIut::new(
        "wrong-machine",
        wrong,
        harness.config().scale,
        OutputPolicy::Eager,
    );
    assert!(
        harness
            .execute(&mut wrong_iut)
            .expect("executes")
            .verdict
            .is_fail(),
        "wrong output must be detected"
    );
}
