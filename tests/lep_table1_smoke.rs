//! Smoke test of the Table 1 reproduction: the Leader Election Protocol with
//! purposes TP1–TP3 for a small number of nodes.  The full sweep lives in the
//! benchmark harness (`crates/bench/benches/table1_lep.rs`).

use tiga::models::leader_election::{plant, product, LepConfig};
use tiga::solver::{solve_jacobi, solve_worklist, SolveOptions};
use tiga::tctl::TestPurpose;
use tiga::testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness, Verdict};

#[test]
fn all_purposes_are_winnable_and_grow_with_n() {
    let purpose_count = LepConfig::new(3).purposes().len();
    let mut prev_states = vec![0usize; purpose_count];
    for n in [3usize, 4] {
        let config = LepConfig::new(n);
        let system = product(config).expect("model builds");
        for (idx, (name, text)) in config.purposes().into_iter().enumerate() {
            let purpose = TestPurpose::parse(&text, &system).expect("parses");
            let solution =
                solve_jacobi(&system, &purpose, &SolveOptions::default()).expect("solves");
            assert!(
                solution.winning_from_initial,
                "{name} must be winnable for n = {n}"
            );
            let states = solution.stats().discrete_states;
            assert!(
                states > prev_states[idx],
                "{name}: state count must grow with n ({} -> {states})",
                prev_states[idx]
            );
            prev_states[idx] = states;
        }
    }
}

#[test]
fn tp1_is_cheaper_than_tp2_and_tp3() {
    // The qualitative shape of Table 1: TP1 (goal reached quickly, pruned
    // exploration) explores far fewer states than TP2/TP3.
    let config = LepConfig::new(4);
    let system = product(config).expect("model builds");
    let mut states = Vec::new();
    for (_, text) in config.purposes() {
        let purpose = TestPurpose::parse(&text, &system).expect("parses");
        let solution = solve_jacobi(&system, &purpose, &SolveOptions::default()).expect("solves");
        states.push(solution.stats().discrete_states);
    }
    assert!(
        states[0] < states[1] && states[0] < states[2],
        "TP1 should be the cheapest: {states:?}"
    );
}

#[test]
fn jacobi_and_worklist_agree_on_lep() {
    let config = LepConfig::new(3);
    let system = product(config).expect("model builds");
    for (_, text) in config.purposes() {
        let purpose = TestPurpose::parse(&text, &system).expect("parses");
        let a = solve_jacobi(&system, &purpose, &SolveOptions::default()).expect("solves");
        let b = solve_worklist(&system, &purpose, &SolveOptions::default()).expect("solves");
        assert_eq!(a.winning_from_initial, b.winning_from_initial, "{text}");
    }
}

#[test]
fn tp1_strategy_executes_against_conformant_node() {
    // End-to-end: synthesize the TP1 test case and run it against a
    // simulated conformant protocol node.
    let config = LepConfig::new(3);
    let harness = TestHarness::synthesize(
        product(config).expect("model builds"),
        plant(config).expect("plant builds"),
        &config.tp1(),
        TestConfig::default(),
    )
    .expect("TP1 is enforceable");
    for policy in [
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Jittery { seed: 5 },
    ] {
        let mut iut = SimulatedIut::new(
            "lep-node",
            plant(config).expect("plant builds"),
            harness.config().scale,
            policy,
        );
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "policy {policy:?}, trace {}",
            report.trace.display(report.scale)
        );
    }
}
