//! End-to-end integration test of the paper's running example: model →
//! test purpose → winning strategy → test execution → verdict.

use tiga::models::smart_light;
use tiga::solver::StrategyDecision;
use tiga::testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness, Verdict};

fn harness_for(purpose: &str) -> TestHarness {
    TestHarness::synthesize(
        smart_light::product().expect("product builds"),
        smart_light::plant().expect("plant builds"),
        purpose,
        TestConfig::default(),
    )
    .expect("purpose is enforceable")
}

#[test]
fn bright_strategy_looks_like_fig5() {
    let harness = harness_for(smart_light::PURPOSE_BRIGHT);
    let product = harness.product().clone();
    let strategy = harness.strategy();
    // The strategy covers several product states and mixes actions and waits,
    // as in Fig. 5.
    assert!(
        strategy.state_count() >= 5,
        "covers {} states",
        strategy.state_count()
    );
    assert!(strategy.rule_count() >= strategy.state_count());
    let listing = format!("{}", strategy.display(&product));
    assert!(listing.contains("take transition touch?"), "{listing}");
    assert!(listing.contains("wait."), "{listing}");
    // In the initial state (Off, Init, all clocks 0) the user must first wait
    // for its reaction time, so the decision is Wait; after 1 time unit the
    // strategy says touch.
    let d0 = product.initial_discrete();
    let scale = harness.config().scale;
    match strategy.decide(&d0, &[0, 0, 0], scale) {
        Some(StrategyDecision::Wait { .. }) => {}
        other => panic!("expected Wait at t=0, got {other:?}"),
    }
    match strategy.decide(&d0, &[scale, scale, scale], scale) {
        Some(StrategyDecision::Take(_)) => {}
        other => panic!("expected Take at t=1, got {other:?}"),
    }
}

#[test]
fn conformant_implementations_always_pass() {
    // Soundness in practice: whatever output timing the (conformant)
    // implementation picks, the test passes.
    let harness = harness_for(smart_light::PURPOSE_BRIGHT);
    let plant = smart_light::plant().expect("plant builds");
    let policies = [
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Offset(3),
        OutputPolicy::Jittery { seed: 1 },
        OutputPolicy::Jittery { seed: 99 },
        OutputPolicy::Jittery { seed: 424_242 },
    ];
    for policy in policies {
        let mut iut = SimulatedIut::new("light", plant.clone(), harness.config().scale, policy);
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "policy {policy:?}: {} (trace {})",
            report.verdict,
            report.trace.display(report.scale)
        );
        // The purpose is Bright, so the last observable action is bright!.
        let outputs: Vec<_> = report
            .trace
            .steps()
            .iter()
            .filter_map(|s| match s {
                tiga::testing::TraceStep::Output(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(outputs.last().map(String::as_str), Some("bright"));
    }
}

#[test]
fn all_enforceable_purposes_pass_against_conformant_iut() {
    let plant = smart_light::plant().expect("plant builds");
    for purpose in [
        smart_light::PURPOSE_BRIGHT,
        smart_light::PURPOSE_DIM,
        smart_light::PURPOSE_BRIGHT_AND_USER_READY,
    ] {
        let harness = harness_for(purpose);
        let mut iut = SimulatedIut::new(
            "light",
            plant.clone(),
            harness.config().scale,
            OutputPolicy::Jittery { seed: 7 },
        );
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(report.verdict, Verdict::Pass, "purpose {purpose}");
    }
}

#[test]
fn wrong_output_on_the_tested_path_is_detected() {
    use tiga::model::Sync;
    use tiga::testing::rebuild_system;

    let harness = harness_for(smart_light::PURPOSE_BRIGHT);
    let plant = smart_light::plant().expect("plant builds");
    // Replace every `bright!` output by `off!`: the strategy must observe the
    // wrong output on its way to Bright and fail.
    let bright = plant.channel_by_name("bright").expect("channel");
    let off = plant.channel_by_name("off").expect("channel");
    let faulty = rebuild_system(
        &plant,
        |_, _, l| l.clone(),
        |_, _, e| {
            let mut e = e.clone();
            if e.sync == Sync::Output(bright) {
                e.sync = Sync::Output(off);
            }
            Some(e)
        },
    )
    .expect("rebuild");
    let mut iut = SimulatedIut::new(
        "faulty-light",
        faulty,
        harness.config().scale,
        OutputPolicy::Jittery { seed: 3 },
    );
    let report = harness.execute(&mut iut).expect("executes");
    assert!(
        report.verdict.is_fail(),
        "expected FAIL, got {} (trace {})",
        report.verdict,
        report.trace.display(report.scale)
    );
}

#[test]
fn sluggish_implementation_is_detected() {
    use tiga::model::{ClockConstraint, CmpOp};
    use tiga::testing::rebuild_system;

    let harness = harness_for(smart_light::PURPOSE_BRIGHT);
    let plant = smart_light::plant().expect("plant builds");
    let tp_clock = plant.clock_by_name("Tp").expect("clock");
    // Widen every pending invariant from Tp <= 2 to Tp <= 6: a lazy
    // implementation now answers later than the specification allows.
    let faulty = rebuild_system(
        &plant,
        |_, _, l| {
            let mut l = l.clone();
            if !l.invariant.is_empty() {
                l.invariant = vec![ClockConstraint::new(tp_clock, CmpOp::Le, 6)];
            }
            l
        },
        |_, _, e| Some(e.clone()),
    )
    .expect("rebuild");
    let mut iut = SimulatedIut::new(
        "sluggish-light",
        faulty,
        harness.config().scale,
        OutputPolicy::Lazy,
    );
    let report = harness.execute(&mut iut).expect("executes");
    assert!(
        report.verdict.is_fail(),
        "expected FAIL, got {} (trace {})",
        report.verdict,
        report.trace.display(report.scale)
    );
}

#[test]
fn unenforceable_purpose_is_rejected() {
    // The light never reaches Bright without a touch after the idle period…
    // more strongly: a location that simply does not exist in the winning
    // region from the start: the purpose "stay in Off forever" is a safety
    // property and `A<> IUT.L6` *is* enforceable, so use a purpose that the
    // tester cannot force: reaching Bright while the user never touches is
    // impossible to express; instead check that a contradictory purpose is
    // rejected.
    let result = TestHarness::synthesize(
        smart_light::product().expect("product builds"),
        smart_light::plant().expect("plant builds"),
        "control: A<> IUT.Bright and IUT.Off",
        TestConfig::default(),
    );
    assert!(result.is_err());
}
